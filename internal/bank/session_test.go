package bank

import (
	"testing"

	"mla/internal/breakpoint"
	"mla/internal/coherent"
	"mla/internal/model"
	"mla/internal/nest"
)

func TestSessionRunsTransfersInSequence(t *testing.T) {
	s := &Session{Txn: "s1", Family: 0, Transfers: []Transfer{
		{Txn: "s1", Sources: []model.EntityID{"A"}, Targets: [2]model.EntityID{"B", "C"}, Amount: 50, Reserve: 1 << 30},
		{Txn: "s1", Sources: []model.EntityID{"B"}, Targets: [2]model.EntityID{"D", "E"}, Amount: 30, Reserve: 1 << 30},
	}}
	vals := map[model.EntityID]model.Value{"A": 100, "B": 0, "C": 0, "D": 0, "E": 0}
	e, err := model.RunSerial([]model.Program{s}, vals)
	if err != nil {
		t.Fatal(err)
	}
	// Transfer 1: withdraw 50 from A, deposit into B. Transfer 2: withdraw
	// 30 from B, deposit into D.
	if vals["A"] != 50 || vals["B"] != 20 || vals["D"] != 30 {
		t.Errorf("balances: %v", vals)
	}
	// Seqs must be continuous across the inner transfers.
	for i, st := range e {
		if st.Seq != i+1 {
			t.Fatalf("step %d has seq %d", i, st.Seq)
		}
		if st.Txn != "s1" {
			t.Fatalf("step %d txn %s", i, st.Txn)
		}
	}
	// The last step of each inner transfer is labeled xfer-end.
	var ends int
	for _, st := range e {
		if st.Label == "xfer-end" {
			ends++
		}
	}
	if ends != 2 {
		t.Errorf("xfer-end labels = %d, want 2", ends)
	}
	if e[len(e)-1].Label != "xfer-end" {
		t.Error("session must end with an xfer-end step")
	}
}

func TestSessionConserves(t *testing.T) {
	p := DefaultSessionParams()
	p.Sessions = 5
	p.SessionLength = 3
	wl := GenerateSessions(p)
	vals := map[model.EntityID]model.Value{}
	for k, v := range wl.Init {
		vals[k] = v
	}
	e, err := model.RunSerial(wl.Programs, vals)
	if err != nil {
		t.Fatal(err)
	}
	inv := wl.Check(e, vals)
	if !inv.ConservationOK {
		t.Error("serial sessioned run must conserve money")
	}
	if inv.AuditsInexact != 0 {
		t.Errorf("%d inexact audits in a serial run", inv.AuditsInexact)
	}
	ok, err := coherent.MultilevelAtomic(e, wl.Nest, wl.Spec)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("serial run must be multilevel atomic")
	}
}

func TestSessionNestLevels(t *testing.T) {
	p := DefaultSessionParams()
	wl := GenerateSessions(p)
	sess := wl.SessionIDs()
	if len(sess) != p.Sessions {
		t.Fatalf("sessions = %d", len(sess))
	}
	var audit model.TxnID
	for _, pr := range wl.Programs {
		if _, ok := wl.audits[pr.ID()]; ok {
			audit = pr.ID()
			break
		}
	}
	// Audits share the customers' level-2 class (unlike the plain banking
	// workload, where they are isolated at level 1).
	if lv := wl.Nest.Level(sess[0], audit); lv != 2 {
		t.Errorf("session vs audit level = %d, want 2", lv)
	}
}

func TestSessionCutPlacement(t *testing.T) {
	p := DefaultSessionParams()
	wl := GenerateSessions(p)
	id := wl.SessionIDs()[0]
	end := []model.Step{{Txn: id, Seq: 3, Label: "xfer-end"}}
	if got := wl.Spec.CutAfter(id, end); got != 2 {
		t.Errorf("after xfer-end = %d, want 2", got)
	}
	mid := []model.Step{{Txn: id, Seq: 1, Label: "withdraw"}}
	if got := wl.Spec.CutAfter(id, mid); got != 3 {
		t.Errorf("mid-transfer = %d, want 3", got)
	}
}

// TestAuditBetweenTransfersIsAtomic: an audit interleaved exactly at a
// session's transfer boundary is multilevel atomic (and sees the conserved
// total); an audit interleaved inside a transfer is not correctable.
func TestAuditBetweenTransfersIsAtomic(t *testing.T) {
	s := &Session{Txn: "s1", Family: 0, Transfers: []Transfer{
		{Txn: "s1", Sources: []model.EntityID{"A"}, Targets: [2]model.EntityID{"B", "X"}, Amount: 40, Reserve: 1 << 30},
		{Txn: "s1", Sources: []model.EntityID{"A"}, Targets: [2]model.EntityID{"C", "X"}, Amount: 10, Reserve: 1 << 30},
	}}
	audit := &Audit{Txn: "a1", Accounts: []model.EntityID{"A", "B", "C"}, Result: "res"}
	wl := &SessionWorkload{
		sessions: map[model.TxnID]*Session{"s1": s},
		audits:   map[model.TxnID]*Audit{"a1": audit},
	}
	n := nest.New(4)
	n.Add("s1", "cust", "fam-0")
	n.Add("a1", "cust", "audit")
	spec := breakpoint.Func{Levels: 4, Fn: wl.cutAfter}
	init := map[model.EntityID]model.Value{"A": 100, "B": 0, "C": 0, "X": 0, "res": 0}

	run := func(order []int) model.Execution {
		vals := map[model.EntityID]model.Value{}
		for k, v := range init {
			vals[k] = v
		}
		e, err := model.Interleave([]model.Program{s, audit}, vals, order, false)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	// Session transfer 1 = 2 steps (withdraw A, deposit B); audit = 4
	// steps; session transfer 2 = 2 steps.
	atBoundary := run([]int{0, 0, 1, 1, 1, 1, 0, 0})
	ok, err := coherent.MultilevelAtomic(atBoundary, n, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("audit at the transfer boundary must be atomic")
	}
	if atBoundary[5].After != 100 {
		t.Errorf("audit result = %d, want the conserved 100", atBoundary[5].After)
	}
	// Audit splitting a transfer: money in transit, not correctable.
	inside := run([]int{0, 1, 1, 1, 1, 0, 0, 0})
	bad, err := coherent.Correctable(inside, n, spec)
	if err != nil {
		t.Fatal(err)
	}
	if bad {
		t.Error("audit inside a transfer must not be correctable")
	}
}
