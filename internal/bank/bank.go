// Package bank implements the paper's running example (Sections 2 and 4):
// the Big Bucks Bank, whose accounts are grouped into families and accessed
// by three kinds of transactions —
//
//   - transfers (the paper's t1): withdraw up to a goal amount from the
//     originating family's accounts, scanned sequentially, then deposit the
//     collected money into two target accounts ("a fuel-bill account and an
//     entertainment account"), topping the first up to a reserve level and
//     putting the remainder in the second;
//   - bank audits: read every account and record the grand total in a
//     dedicated result entity ("enter a calculated interest amount into a
//     special account");
//   - creditor audits: read one family's accounts and record that family's
//     total.
//
// The 4-nest and breakpoint structure follow Section 4.2's banking example:
// π(2) groups customer and creditor transactions together and isolates each
// bank audit; π(3) refines π(2) by family; a transfer's only level-2
// breakpoint separates its withdrawal phase from its deposit phase, while
// every other interior boundary is a level-3 breakpoint (family members
// interleave freely).
package bank

import (
	"fmt"

	"mla/internal/model"
)

// World describes the account universe.
type World struct {
	Families          int
	AccountsPerFamily int
	InitialBalance    model.Value
}

// Account returns the entity ID of account i of family f.
func (w World) Account(f, i int) model.EntityID {
	return model.EntityID(fmt.Sprintf("acct/f%02d/a%02d", f, i))
}

// Accounts returns all account entities, family-major.
func (w World) Accounts() []model.EntityID {
	out := make([]model.EntityID, 0, w.Families*w.AccountsPerFamily)
	for f := 0; f < w.Families; f++ {
		for i := 0; i < w.AccountsPerFamily; i++ {
			out = append(out, w.Account(f, i))
		}
	}
	return out
}

// FamilyAccounts returns family f's account entities.
func (w World) FamilyAccounts(f int) []model.EntityID {
	out := make([]model.EntityID, 0, w.AccountsPerFamily)
	for i := 0; i < w.AccountsPerFamily; i++ {
		out = append(out, w.Account(f, i))
	}
	return out
}

// Init returns the initial entity values: every account at InitialBalance.
func (w World) Init() map[model.EntityID]model.Value {
	init := make(map[model.EntityID]model.Value)
	for _, x := range w.Accounts() {
		init[x] = w.InitialBalance
	}
	return init
}

// Total returns the initial total money supply.
func (w World) Total() model.Value {
	return model.Value(w.Families*w.AccountsPerFamily) * w.InitialBalance
}

// Transfer is the paper's branching funds-transfer transaction t1
// (Section 4.3): it examines Sources sequentially, "attempting to obtain
// [Amount] as soon as possible"; accounts beyond the one that completes the
// goal are not accessed. It then deposits into Targets[0] up to the Reserve
// level and puts any remainder into Targets[1]; if nothing remains after
// the first deposit, the second account is not accessed.
type Transfer struct {
	Txn     model.TxnID
	Family  int // originating family (for the nest)
	Sources []model.EntityID
	Targets [2]model.EntityID
	Amount  model.Value
	Reserve model.Value
}

// ID implements model.Program.
func (t *Transfer) ID() model.TxnID { return t.Txn }

// Init implements model.Program.
func (t *Transfer) Init() model.ProgState { return xferState{t: t, phase: 0, idx: 0} }

type xferState struct {
	t     *Transfer
	phase int // 0 withdrawing, 1 first deposit, 2 second deposit, 3 done
	idx   int // next source index
	got   model.Value
}

func (s xferState) Next() (model.EntityID, bool) {
	switch s.phase {
	case 0:
		return s.t.Sources[s.idx], true
	case 1:
		return s.t.Targets[0], true
	case 2:
		return s.t.Targets[1], true
	}
	return "", false
}

func (s xferState) Apply(v model.Value) (model.Value, string, model.ProgState) {
	switch s.phase {
	case 0:
		take := s.t.Amount - s.got
		if take > v {
			take = v
		}
		ns := s
		ns.got += take
		ns.idx++
		if ns.got >= s.t.Amount || ns.idx >= len(s.t.Sources) {
			ns.phase = 1 // withdrawal phase complete
		}
		return v - take, "withdraw", ns
	case 1:
		need := s.t.Reserve - v
		if need < 0 {
			need = 0
		}
		put := s.got
		if put > need {
			put = need
		}
		ns := s
		ns.got -= put
		if ns.got > 0 {
			ns.phase = 2
		} else {
			ns.phase = 3
		}
		return v + put, "deposit", ns
	case 2:
		ns := s
		put := ns.got
		ns.got = 0
		ns.phase = 3
		return v + put, "deposit", ns
	}
	return v, "", s
}

// WithdrawDone reports whether the prefix completes the withdrawal phase:
// the collected amount reached the goal or every source was scanned. The
// workload's breakpoint specification uses it to place the phase boundary
// online, and a service front-end admitting transfers one at a time
// (internal/serve) needs the same boundary for transfers the batch
// workload never saw — which is why it is exported.
func (t *Transfer) WithdrawDone(prefix []model.Step) bool {
	var got model.Value
	withdrawals := 0
	for _, s := range prefix {
		if s.Label == "withdraw" {
			withdrawals++
			got += s.Before - s.After
		}
	}
	return got >= t.Amount || withdrawals >= len(t.Sources)
}

// Audit is the bank audit: it reads every account and finally records the
// observed grand total in its Result entity. Under the banking nest an
// audit relates to everything else only at level 1, so it is atomic with
// respect to all other transactions — and therefore must observe exactly
// the conserved total.
type Audit struct {
	Txn      model.TxnID
	Accounts []model.EntityID
	Result   model.EntityID
}

// ID implements model.Program.
func (a *Audit) ID() model.TxnID { return a.Txn }

// Init implements model.Program.
func (a *Audit) Init() model.ProgState { return auditState{a: a} }

type auditState struct {
	a   *Audit
	idx int
	sum model.Value
}

func (s auditState) Next() (model.EntityID, bool) {
	if s.idx < len(s.a.Accounts) {
		return s.a.Accounts[s.idx], true
	}
	if s.idx == len(s.a.Accounts) {
		return s.a.Result, true
	}
	return "", false
}

func (s auditState) Apply(v model.Value) (model.Value, string, model.ProgState) {
	ns := s
	ns.idx++
	if s.idx < len(s.a.Accounts) {
		ns.sum += v
		return v, "read", ns
	}
	return ns.sum, "record", ns
}
