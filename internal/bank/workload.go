package bank

import (
	"fmt"
	"math/rand"

	"mla/internal/breakpoint"
	"mla/internal/model"
	"mla/internal/nest"
)

// Params configures a generated banking workload.
type Params struct {
	Families          int
	AccountsPerFamily int
	InitialBalance    model.Value

	Transfers      int
	BankAudits     int
	CreditorAudits int

	Amount  model.Value // transfer goal (the paper's $100)
	Reserve model.Value // first-deposit top-up level (the paper's $125)

	// CrossFamilyPct is the percentage (0..100) of transfers whose deposit
	// targets lie in a different family — the paper notes inter-family
	// transfers are "fairly common".
	CrossFamilyPct int

	Seed int64
}

// DefaultParams returns a moderately contended configuration.
func DefaultParams() Params {
	return Params{
		Families:          4,
		AccountsPerFamily: 4,
		InitialBalance:    1000,
		Transfers:         24,
		BankAudits:        2,
		CreditorAudits:    4,
		Amount:            100,
		Reserve:           125,
		CrossFamilyPct:    50,
		Seed:              1,
	}
}

// Workload bundles everything a run needs: the programs, the multilevel
// atomicity specification (nest + breakpoints) from Section 4.2's banking
// example, and the initial store.
type Workload struct {
	World    World
	Params   Params
	Programs []model.Program
	Nest     *nest.Nest
	Spec     breakpoint.Spec
	Init     map[model.EntityID]model.Value

	transfers map[model.TxnID]*Transfer
	audits    map[model.TxnID]*Audit // bank audits
	creditors map[model.TxnID]*Audit // creditor (family) audits
}

// Generate builds a deterministic banking workload from the parameters.
func Generate(p Params) *Workload {
	rng := rand.New(rand.NewSource(p.Seed))
	w := World{Families: p.Families, AccountsPerFamily: p.AccountsPerFamily, InitialBalance: p.InitialBalance}
	wl := &Workload{
		World:     w,
		Params:    p,
		Init:      w.Init(),
		transfers: make(map[model.TxnID]*Transfer),
		audits:    make(map[model.TxnID]*Audit),
		creditors: make(map[model.TxnID]*Audit),
	}

	n := nest.New(4)
	var programs []model.Program

	for i := 0; i < p.Transfers; i++ {
		f := rng.Intn(p.Families)
		id := model.TxnID(fmt.Sprintf("xfer-%03d", i))
		// Sources: up to 3 distinct accounts of the originating family.
		srcIdx := rng.Perm(p.AccountsPerFamily)
		nsrc := 3
		if nsrc > p.AccountsPerFamily {
			nsrc = p.AccountsPerFamily
		}
		var sources []model.EntityID
		for _, ai := range srcIdx[:nsrc] {
			sources = append(sources, w.Account(f, ai))
		}
		// Targets: two distinct accounts, possibly in another family, and
		// distinct from the sources (the paper deposits into "two arbitrary
		// other accounts").
		tf := f
		if p.Families > 1 && rng.Intn(100) < p.CrossFamilyPct {
			for tf == f {
				tf = rng.Intn(p.Families)
			}
		}
		var targets [2]model.EntityID
		tIdx := rng.Perm(p.AccountsPerFamily)
		picked := 0
		for _, ai := range tIdx {
			cand := w.Account(tf, ai)
			dup := false
			for _, s := range sources {
				if s == cand {
					dup = true
					break
				}
			}
			if !dup {
				targets[picked] = cand
				picked++
				if picked == 2 {
					break
				}
			}
		}
		if picked < 2 {
			// Tiny families: fall back to any accounts of another family or
			// reuse a source (still a valid transaction).
			for picked < 2 {
				targets[picked] = w.Account(tf, rng.Intn(p.AccountsPerFamily))
				picked++
			}
		}
		tr := &Transfer{Txn: id, Family: f, Sources: sources, Targets: targets, Amount: p.Amount, Reserve: p.Reserve}
		wl.transfers[id] = tr
		programs = append(programs, tr)
		n.Add(id, "cust", fmt.Sprintf("fam-%02d", f))
	}

	for i := 0; i < p.BankAudits; i++ {
		id := model.TxnID(fmt.Sprintf("audit-%03d", i))
		a := &Audit{Txn: id, Accounts: w.Accounts(), Result: model.EntityID("auditres/" + string(id))}
		wl.audits[id] = a
		wl.Init[a.Result] = 0
		programs = append(programs, a)
		n.Add(id, "audit/"+string(id), "audit/"+string(id))
	}

	for i := 0; i < p.CreditorAudits; i++ {
		f := rng.Intn(p.Families)
		id := model.TxnID(fmt.Sprintf("cred-%03d", i))
		a := &Audit{Txn: id, Accounts: w.FamilyAccounts(f), Result: model.EntityID("credres/" + string(id))}
		wl.creditors[id] = a
		wl.Init[a.Result] = 0
		programs = append(programs, a)
		n.Add(id, "cust", "cred/"+string(id))
	}

	// Shuffle arrival order so audits are interspersed among transfers.
	rng.Shuffle(len(programs), func(i, j int) { programs[i], programs[j] = programs[j], programs[i] })
	wl.Programs = programs
	wl.Nest = n
	wl.Spec = breakpoint.Func{Levels: 4, Fn: wl.cutAfter}
	return wl
}

// cutAfter implements the banking breakpoint description of Section 4.2:
// for transfers, the boundary after the withdrawal phase completes has
// coarseness 2 (customers and creditors may interleave there, bank audits
// may not) and every other interior boundary has coarseness 3 (only family
// members interleave). Audits and creditor audits have no interior
// breakpoints below the singleton level.
func (wl *Workload) cutAfter(t model.TxnID, prefix []model.Step) int {
	if tr, ok := wl.transfers[t]; ok {
		last := prefix[len(prefix)-1]
		if last.Label == "withdraw" && tr.WithdrawDone(prefix) {
			return 2
		}
		return 3
	}
	return 4
}

// SerializabilitySpec returns the k=2 spec over the same transactions, for
// baseline comparisons on identical workloads.
func (wl *Workload) SerializabilitySpec() (*nest.Nest, breakpoint.Spec) {
	n := nest.New(2)
	for _, p := range wl.Programs {
		n.Add(p.ID())
	}
	return n, breakpoint.Uniform{Levels: 2, C: 2}
}

// Invariants summarizes the correctness checks of a finished run.
type Invariants struct {
	ConservationOK   bool // account total equals the initial supply
	AuditsExact      int  // bank audits whose recorded total is exact
	AuditsInexact    int
	CreditorsExact   int // creditor audits matching their family's final... see doc
	CreditorsChecked int
	TraceValid       error       // value-chain validation of the surviving execution
	Expected         model.Value // the conserved total
}

// Check evaluates the banking invariants against a run's result:
//
//   - conservation: transfers move money but never create or destroy it, so
//     the final account total must equal the initial supply;
//   - audit exactness: a bank audit is atomic with respect to every other
//     transaction under the Section 4.2 nest, so the total it records must
//     be exactly the conserved supply. A control that admits non-MLA
//     interleavings (e.g. None) records in-transit money instead.
//   - trace validity: the surviving execution's values chain per entity.
//
// Creditor audits record one family's total; since transfers legitimately
// interleave with them at phase boundaries (level-2 breakpoints), their
// recorded totals are reported but not required to match anything.
func (wl *Workload) Check(exec model.Execution, final map[model.EntityID]model.Value) Invariants {
	inv := Invariants{Expected: wl.World.Total()}
	var total model.Value
	for _, x := range wl.World.Accounts() {
		total += final[x]
	}
	inv.ConservationOK = total == inv.Expected
	for _, a := range wl.audits {
		if final[a.Result] == inv.Expected {
			inv.AuditsExact++
		} else {
			inv.AuditsInexact++
		}
	}
	inv.CreditorsChecked = len(wl.creditors)
	inv.TraceValid = exec.Validate(wl.Init)
	return inv
}

// Transfer returns the transfer program registered under id, if any.
func (wl *Workload) Transfer(id model.TxnID) (*Transfer, bool) {
	t, ok := wl.transfers[id]
	return t, ok
}

// BankAuditIDs returns the bank audit transaction IDs, sorted by ID.
func (wl *Workload) BankAuditIDs() []model.TxnID {
	var out []model.TxnID
	for id := range wl.audits {
		out = append(out, id)
	}
	sortTxnIDs(out)
	return out
}

func sortTxnIDs(ids []model.TxnID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}
