package breakpoint

import (
	"fmt"

	"mla/internal/model"
)

// Spec is a k-level breakpoint specification for a system of transactions
// (Section 4.3): it supplies a breakpoint description for every execution of
// every transaction. Because transactions branch, the description may depend
// on the steps actually taken.
//
// The interface is deliberately *online*: CutAfter answers "is there a
// breakpoint immediately after this prefix, and how coarse?" given only the
// prefix. This builds in the compatibility condition of Section 6 — two
// executions sharing a prefix necessarily agree on the breakpoint after it —
// which is exactly what an on-line concurrency control needs.
type Spec interface {
	// K returns the number of levels (same k as the companion nest).
	K() int
	// CutAfter returns the coarseness (minimum level, in 2..K) of the
	// breakpoint after the first len(prefix) steps of transaction t, for a
	// transaction that is not yet finished. A return of K means "no
	// breakpoint for anybody else here" (only the trivial singleton cut).
	CutAfter(t model.TxnID, prefix []model.Step) int
}

// Describe materializes the full k-level breakpoint description for a
// completed execution of t with the given steps, by querying CutAfter on
// every proper prefix.
func Describe(s Spec, t model.TxnID, steps []model.Step) *Description {
	d := NewDescription(s.K(), len(steps))
	for p := 1; p < len(steps); p++ {
		c := s.CutAfter(t, steps[:p])
		if c < 2 || c > s.K() {
			panic(fmt.Sprintf("breakpoint: spec returned coarseness %d for %s at position %d, want [2,%d]",
				c, t, p, s.K()))
		}
		d.SetCut(p, c)
	}
	return d
}

// Uniform is the specification in which every interior boundary of every
// transaction has the same coarseness C.
//
//   - Uniform{K: 2, C: 2} is the unique 2-level specification: multilevel
//     atomicity degenerates to classical serializability (Section 4.3).
//   - Uniform{K: 3, C: 2} is Garcia-Molina's compatibility sets [G]:
//     transactions in a common π(2) class interleave arbitrarily, all others
//     serialize (Section 4.3, second example).
//   - Uniform{K: k, C: k} forbids all interior breakpoints: full mutual
//     atomicity regardless of the nest.
type Uniform struct {
	Levels int // k
	C      int // coarseness of every interior boundary
}

// K implements Spec.
func (u Uniform) K() int { return u.Levels }

// CutAfter implements Spec.
func (u Uniform) CutAfter(model.TxnID, []model.Step) int { return u.C }

// Func adapts a closure to the Spec interface.
type Func struct {
	Levels int
	Fn     func(t model.TxnID, prefix []model.Step) int
}

// K implements Spec.
func (f Func) K() int { return f.Levels }

// CutAfter implements Spec.
func (f Func) CutAfter(t model.TxnID, prefix []model.Step) int { return f.Fn(t, prefix) }

// PerTxn dispatches to a different Spec per transaction, with a default for
// transactions not listed. All member specs must share the same K; New
// enforces it.
type PerTxn struct {
	levels   int
	byTxn    map[model.TxnID]Spec
	fallback Spec
}

// NewPerTxn builds a PerTxn spec with the given default.
func NewPerTxn(def Spec) *PerTxn {
	return &PerTxn{levels: def.K(), byTxn: make(map[model.TxnID]Spec), fallback: def}
}

// Set assigns a spec to one transaction.
func (p *PerTxn) Set(t model.TxnID, s Spec) {
	if s.K() != p.levels {
		panic(fmt.Sprintf("breakpoint: spec for %s has k=%d, want %d", t, s.K(), p.levels))
	}
	p.byTxn[t] = s
}

// K implements Spec.
func (p *PerTxn) K() int { return p.levels }

// CutAfter implements Spec.
func (p *PerTxn) CutAfter(t model.TxnID, prefix []model.Step) int {
	if s, ok := p.byTxn[t]; ok {
		return s.CutAfter(t, prefix)
	}
	return p.fallback.CutAfter(t, prefix)
}

// ByLabel assigns coarseness from the labels of the steps flanking the
// boundary: the coarsest matching rule wins, falling back to Default. It
// captures patterns like the paper's banking description, where the single
// level-2 breakpoint of a transfer sits between the last withdrawal and the
// first deposit.
type ByLabel struct {
	Levels  int
	Default int
	// Rules maps "beforeLabel/afterLabel" to a coarseness. Either side may
	// be "*" to match any label.
	Rules map[string]int
}

// K implements Spec.
func (b ByLabel) K() int { return b.Levels }

// CutAfter implements Spec.
func (b ByLabel) CutAfter(t model.TxnID, prefix []model.Step) int {
	// The label after the boundary is unknowable online (the next step has
	// not happened); ByLabel therefore keys on the label *before* the
	// boundary plus a wildcard, which keeps it compatible in the Section 6
	// sense. Rules of the form "label/*" and "*/*" are honored.
	last := prefix[len(prefix)-1].Label
	best := b.Default
	if c, ok := b.Rules[last+"/*"]; ok && c < best {
		best = c
	}
	if c, ok := b.Rules["*/*"]; ok && c < best {
		best = c
	}
	if best < 2 {
		best = 2
	}
	if best > b.Levels {
		best = b.Levels
	}
	return best
}

// Clamp restricts a specification to fewer levels: coarseness values above
// k are clamped to k (a boundary nobody may use) and K() reports k. It is
// the generic form of "flattening" a hierarchy — see the CAD workload's
// nest-depth experiment — and requires k ≤ the wrapped spec's K.
func Clamp(s Spec, k int) Spec {
	if k < 2 || k > s.K() {
		panic(fmt.Sprintf("breakpoint: clamp level %d out of range [2,%d]", k, s.K()))
	}
	return clamped{inner: s, k: k}
}

type clamped struct {
	inner Spec
	k     int
}

// K implements Spec.
func (c clamped) K() int { return c.k }

// CutAfter implements Spec.
func (c clamped) CutAfter(t model.TxnID, prefix []model.Step) int {
	v := c.inner.CutAfter(t, prefix)
	if v > c.k {
		return c.k
	}
	return v
}
