package breakpoint

import (
	"testing"
	"testing/quick"

	"mla/internal/model"
)

// paperTransfer builds the 4-level description from the paper's Section 4.2
// banking example: steps w1 w2 w3 δ1 δ2, with B(2) classes {w1,w2,w3} and
// {δ1,δ2} (one level-2 cut between positions 3 and 4) and B(3)=B(4)
// singletons (every interior position cut at level 3).
func paperTransfer() *Description {
	d := NewDescription(4, 5)
	for p := 1; p <= 4; p++ {
		d.SetCut(p, 3)
	}
	d.SetCut(3, 2)
	return d
}

func TestPaperBankingDescription(t *testing.T) {
	d := paperTransfer()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	// B(1): one class of all 5.
	if c := d.Classes(1); len(c) != 1 || c[0] != [2]int{1, 5} {
		t.Errorf("B(1) classes = %v", c)
	}
	// B(2): {1..3},{4..5}.
	if c := d.Classes(2); len(c) != 2 || c[0] != [2]int{1, 3} || c[1] != [2]int{4, 5} {
		t.Errorf("B(2) classes = %v", c)
	}
	// B(3) and B(4): singletons.
	for lv := 3; lv <= 4; lv++ {
		c := d.Classes(lv)
		if len(c) != 5 {
			t.Errorf("B(%d) has %d classes, want 5", lv, len(c))
		}
	}
}

func TestSameSegment(t *testing.T) {
	d := paperTransfer()
	if !d.SameSegment(1, 3, 2) {
		t.Error("w1..w3 share the B(2) segment")
	}
	if d.SameSegment(3, 4, 2) {
		t.Error("w3 and δ1 are separated by the level-2 breakpoint")
	}
	if d.SameSegment(1, 2, 3) {
		t.Error("B(3) is singletons")
	}
	if !d.SameSegment(2, 2, 4) {
		t.Error("a step shares every segment with itself")
	}
	if !d.SameSegment(1, 5, 1) {
		t.Error("B(1) never separates")
	}
	// Argument order must not matter.
	if d.SameSegment(4, 3, 2) {
		t.Error("SameSegment must be symmetric")
	}
}

func TestSegmentBounds(t *testing.T) {
	d := paperTransfer()
	if got := d.SegmentEnd(1, 2); got != 3 {
		t.Errorf("SegmentEnd(1,2) = %d, want 3", got)
	}
	if got := d.SegmentEnd(4, 2); got != 5 {
		t.Errorf("SegmentEnd(4,2) = %d, want 5", got)
	}
	if got := d.SegmentStart(5, 2); got != 4 {
		t.Errorf("SegmentStart(5,2) = %d, want 4", got)
	}
	if got := d.SegmentEnd(2, 1); got != 5 {
		t.Errorf("SegmentEnd(2,1) = %d, want 5", got)
	}
	if got := d.SegmentEnd(2, 3); got != 2 {
		t.Errorf("SegmentEnd(2,3) = %d, want 2", got)
	}
}

func TestCoarsenessAndCuts(t *testing.T) {
	d := paperTransfer()
	if d.Coarseness(3) != 2 || d.Coarseness(1) != 3 {
		t.Errorf("coarseness: pos3=%d pos1=%d", d.Coarseness(3), d.Coarseness(1))
	}
	if !d.IsCut(3, 2) || d.IsCut(1, 2) || !d.IsCut(1, 3) || d.IsCut(3, 1) {
		t.Error("IsCut misclassifies positions")
	}
	// SetCut keeps the coarsest.
	d.SetCut(3, 4)
	if d.Coarseness(3) != 2 {
		t.Error("SetCut must keep the coarser cut")
	}
}

func TestDefaultDescriptionIsAtomic(t *testing.T) {
	d := NewDescription(3, 4)
	if len(d.Classes(2)) != 1 {
		t.Error("default description has no cuts below k")
	}
	if len(d.Classes(3)) != 4 {
		t.Error("B(k) must be singletons")
	}
}

func TestDescriptionEdgeCases(t *testing.T) {
	d0 := NewDescription(2, 0)
	if d0.Classes(1) != nil {
		t.Error("empty description has no classes")
	}
	d1 := NewDescription(2, 1)
	if c := d1.Classes(2); len(c) != 1 {
		t.Errorf("single-step description: %v", c)
	}
	if got := d1.CutAfter(1); got != 0 {
		t.Errorf("CutAfter(last) = %d, want 0", got)
	}
	c := paperTransfer().Clone()
	if c.Coarseness(3) != 2 {
		t.Error("Clone lost cuts")
	}
	c.SetCut(1, 2)
	if paperTransfer().Coarseness(1) == 2 {
		t.Error("Clone must be independent")
	}
}

// Property: for any random cut assignment, the segmentation axioms hold —
// B(i) refines B(i-1), classes are contiguous, and SameSegment agrees with
// Classes.
func TestQuickSegmentationAxioms(t *testing.T) {
	f := func(cutsRaw []uint8) bool {
		k, n := 4, 8
		d := NewDescription(k, n)
		for i, c := range cutsRaw {
			pos := i%(n-1) + 1
			lvl := int(c)%(k-1) + 2
			d.SetCut(pos, lvl)
		}
		if d.Validate() != nil {
			return false
		}
		for lv := 2; lv <= k; lv++ {
			fine := d.Classes(lv)
			coarse := d.Classes(lv - 1)
			// Refinement: every fine class lies inside one coarse class.
			for _, fc := range fine {
				inside := false
				for _, cc := range coarse {
					if fc[0] >= cc[0] && fc[1] <= cc[1] {
						inside = true
						break
					}
				}
				if !inside {
					return false
				}
			}
			// SameSegment consistency.
			for _, fc := range fine {
				for i := fc[0]; i <= fc[1]; i++ {
					for j := i; j <= fc[1]; j++ {
						if !d.SameSegment(i, j, lv) {
							return false
						}
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDescribeUsesPrefixes(t *testing.T) {
	// Coarseness 2 after any step labeled "w" whose position is even.
	spec := Func{Levels: 3, Fn: func(_ model.TxnID, prefix []model.Step) int {
		if len(prefix)%2 == 0 {
			return 2
		}
		return 3
	}}
	steps := make([]model.Step, 5)
	for i := range steps {
		steps[i] = model.Step{Txn: "t", Seq: i + 1, Entity: "x"}
	}
	d := Describe(spec, "t", steps)
	if d.Coarseness(2) != 2 || d.Coarseness(4) != 2 || d.Coarseness(1) != 3 || d.Coarseness(3) != 3 {
		t.Errorf("Describe cuts wrong: %d %d %d %d",
			d.Coarseness(1), d.Coarseness(2), d.Coarseness(3), d.Coarseness(4))
	}
}

func TestUniformSpecs(t *testing.T) {
	u := Uniform{Levels: 2, C: 2}
	if u.K() != 2 || u.CutAfter("t", nil) != 2 {
		t.Error("serializability spec wrong")
	}
	g := Uniform{Levels: 3, C: 2}
	steps := []model.Step{{Txn: "t", Seq: 1, Entity: "x"}, {Txn: "t", Seq: 2, Entity: "y"}}
	d := Describe(g, "t", steps)
	if !d.IsCut(1, 2) {
		t.Error("compatibility-sets spec must cut everywhere at level 2")
	}
}

func TestPerTxnSpec(t *testing.T) {
	p := NewPerTxn(Uniform{Levels: 3, C: 3})
	p.Set("special", Uniform{Levels: 3, C: 2})
	if p.K() != 3 {
		t.Error("K")
	}
	if got := p.CutAfter("special", nil); got != 2 {
		t.Errorf("special cut = %d", got)
	}
	if got := p.CutAfter("other", nil); got != 3 {
		t.Errorf("fallback cut = %d", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("mismatched k must panic")
		}
	}()
	p.Set("bad", Uniform{Levels: 2, C: 2})
}

func TestByLabelSpec(t *testing.T) {
	b := ByLabel{Levels: 4, Default: 3, Rules: map[string]int{"withdraw/*": 2}}
	wd := []model.Step{{Txn: "t", Seq: 1, Label: "withdraw"}}
	dep := []model.Step{{Txn: "t", Seq: 1, Label: "deposit"}}
	if got := b.CutAfter("t", wd); got != 2 {
		t.Errorf("after withdraw = %d", got)
	}
	if got := b.CutAfter("t", dep); got != 3 {
		t.Errorf("after deposit = %d", got)
	}
}

func TestDescriptionPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	d := NewDescription(3, 3)
	mustPanic("bad k", func() { NewDescription(1, 3) })
	mustPanic("cut pos 0", func() { d.SetCut(0, 2) })
	mustPanic("cut pos n", func() { d.SetCut(3, 2) })
	mustPanic("cut level 1", func() { d.SetCut(1, 1) })
	mustPanic("step 0", func() { d.SegmentEnd(0, 2) })
}

func TestClamp(t *testing.T) {
	base := Func{Levels: 5, Fn: func(_ model.TxnID, prefix []model.Step) int {
		return 2 + len(prefix)%3 // 3, 4, 2, ...
	}}
	c := Clamp(base, 3)
	if c.K() != 3 {
		t.Fatalf("K = %d", c.K())
	}
	one := []model.Step{{Txn: "t", Seq: 1}}
	two := append(one, model.Step{Txn: "t", Seq: 2})
	if got := c.CutAfter("t", one); got != 3 {
		t.Errorf("clamped = %d, want 3", got)
	}
	if got := c.CutAfter("t", two); got != 3 { // 4 clamped to 3
		t.Errorf("clamped = %d, want 3", got)
	}
	mustPanic := func(f func()) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic")
			}
		}()
		f()
	}
	mustPanic(func() { Clamp(base, 1) })
	mustPanic(func() { Clamp(base, 6) })
}
