// Package breakpoint implements k-level breakpoint descriptions and
// specifications (Section 4.2 of the paper).
//
// A k-level breakpoint description B for a totally ordered set of n steps is
// a k-nest of segmentations: B(1) groups all steps into one segment, B(k)
// splits them into singletons, and each B(i) refines B(i-1). Equivalently,
// the boundary positions nest: cuts(1) = ∅ ⊆ cuts(2) ⊆ … ⊆ cuts(k) = all
// interior positions. The package therefore stores, for each interior
// boundary position p ∈ 1..n-1 (between step p and step p+1, steps
// 1-based), its "coarseness": the minimum level at which p is a cut.
// B(level) has a cut at p exactly when coarseness(p) ≤ level. Coarseness
// ranges over 2..k — level 1 never cuts, level k always does.
//
// Intuition for scheduling: a transaction t′ with level(t,t′) = L is
// permitted to interrupt t exactly at boundaries of B(L), i.e. at positions
// with coarseness ≤ L. Small coarseness = coarse breakpoint = many
// transactions may interleave there; coarseness k = nobody may (only t
// itself, vacuously).
package breakpoint

import "fmt"

// Description is a k-level breakpoint description for one execution of one
// transaction with n steps.
type Description struct {
	k      int
	n      int
	coarse []int // coarse[p-1] for interior boundary position p in 1..n-1
}

// NewDescription returns the description with no breakpoints below level k:
// every interior position has coarseness k (B(i) = one segment for all
// i < k, B(k) = singletons). With k = 2 this is the unique description of
// Section 4.3, under which multilevel atomicity is serializability.
func NewDescription(k, n int) *Description {
	if k < 2 {
		panic(fmt.Sprintf("breakpoint: k must be >= 2, got %d", k))
	}
	if n < 0 {
		panic(fmt.Sprintf("breakpoint: negative step count %d", n))
	}
	d := &Description{k: k, n: n}
	if n > 1 {
		d.coarse = make([]int, n-1)
		for i := range d.coarse {
			d.coarse[i] = k
		}
	}
	return d
}

// K returns the number of levels.
func (d *Description) K() int { return d.k }

// Len returns the number of steps described.
func (d *Description) Len() int { return d.n }

// SetCut declares a breakpoint of the given level at interior position pos
// (1..n-1): position pos becomes a cut of B(level) and, by nesting, of every
// finer B(j), j ≥ level. If the position already has a coarser cut, SetCut
// keeps the coarser one.
func (d *Description) SetCut(pos, level int) {
	d.checkPos(pos)
	if level < 2 || level > d.k {
		panic(fmt.Sprintf("breakpoint: cut level %d out of range [2,%d]", level, d.k))
	}
	if level < d.coarse[pos-1] {
		d.coarse[pos-1] = level
	}
}

// Coarseness returns the minimum level at which interior position pos is a
// cut.
func (d *Description) Coarseness(pos int) int {
	d.checkPos(pos)
	return d.coarse[pos-1]
}

// IsCut reports whether position pos is a boundary of B(level).
func (d *Description) IsCut(pos, level int) bool {
	d.checkPos(pos)
	if level < 1 || level > d.k {
		panic(fmt.Sprintf("breakpoint: level %d out of range [1,%d]", level, d.k))
	}
	return d.coarse[pos-1] <= level
}

func (d *Description) checkPos(pos int) {
	if pos < 1 || pos >= d.n {
		panic(fmt.Sprintf("breakpoint: interior position %d out of range [1,%d)", pos, d.n))
	}
}

// SameSegment reports whether steps i and j (1-based) lie in the same
// equivalence class of B(level): no cut of B(level) separates them.
func (d *Description) SameSegment(i, j, level int) bool {
	if i > j {
		i, j = j, i
	}
	d.checkStep(i)
	d.checkStep(j)
	for p := i; p < j; p++ {
		if d.coarse[p-1] <= level {
			return false
		}
	}
	return true
}

// SegmentEnd returns the last step (1-based) of the B(level) segment
// containing step i.
func (d *Description) SegmentEnd(i, level int) int {
	d.checkStep(i)
	for p := i; p < d.n; p++ {
		if d.coarse[p-1] <= level {
			return p
		}
	}
	return d.n
}

// SegmentStart returns the first step (1-based) of the B(level) segment
// containing step i.
func (d *Description) SegmentStart(i, level int) int {
	d.checkStep(i)
	for p := i - 1; p >= 1; p-- {
		if d.coarse[p-1] <= level {
			return p + 1
		}
	}
	return 1
}

func (d *Description) checkStep(i int) {
	if i < 1 || i > d.n {
		panic(fmt.Sprintf("breakpoint: step %d out of range [1,%d]", i, d.n))
	}
}

// Classes returns the segments of B(level) as half-open intervals of
// 1-based step indices [start, end] inclusive, in order.
func (d *Description) Classes(level int) [][2]int {
	if d.n == 0 {
		return nil
	}
	var out [][2]int
	start := 1
	for p := 1; p < d.n; p++ {
		if d.coarse[p-1] <= level {
			out = append(out, [2]int{start, p})
			start = p + 1
		}
	}
	out = append(out, [2]int{start, d.n})
	return out
}

// CutAfter reports the coarseness of the boundary after step pos, or 0 if
// pos is the last step (the end of a transaction is a boundary of every
// level, including level 1 — callers treat 0 as "fully open").
func (d *Description) CutAfter(pos int) int {
	d.checkStep(pos)
	if pos == d.n {
		return 0
	}
	return d.coarse[pos-1+0]
}

// Validate checks internal consistency: every coarseness in [2, k].
func (d *Description) Validate() error {
	for i, c := range d.coarse {
		if c < 2 || c > d.k {
			return fmt.Errorf("breakpoint: position %d has coarseness %d outside [2,%d]", i+1, c, d.k)
		}
	}
	return nil
}

// Clone returns a deep copy.
func (d *Description) Clone() *Description {
	nd := &Description{k: d.k, n: d.n}
	nd.coarse = append([]int(nil), d.coarse...)
	return nd
}
