// Per-processor replica state and the message-driven protocol machinery:
// heartbeat failure detection, finish retransmission, edge-chasing deadlock
// probes, grace-period escalation, anti-entropy resync, and the scheduled
// partition/crash chaos. Everything here runs off Tick and bus deliveries;
// nothing consults another replica's state directly.
package dist

import (
	"sort"

	"mla/internal/model"
	mnet "mla/internal/net"
)

// repView is one replica's soft-state knowledge about one transaction: the
// latest boundary positions it has heard (per level) and whether it has
// heard the finish. Lost entirely when the processor crashes.
type repView struct {
	epoch    int
	bound    []int // index 0 unused
	finished bool
}

// waitRec is one blocked request recorded at the replica that owns the
// requested entity.
type waitRec struct {
	seq       int
	since     int64 // when the wait began (probe eligibility)
	nextProbe int64
	// strandedSince is when every path forward started depending on a
	// suspected processor; 0 while reachable. After Grace, the waiter is
	// aborted rather than left hanging across the partition.
	strandedSince int64
	blockers      map[model.TxnID]bool
}

type probeKey struct {
	init   model.TxnID
	target model.TxnID
}

// replica is the soft state of one processor. up=false models a crashed
// processor: everything here is volatile and zeroed on crash.
type replica struct {
	id int
	up bool
	k  int

	view    map[model.TxnID]*repView
	waiting map[model.TxnID]*waitRec

	// Failure detector.
	lastHeard []int64
	suspected []bool
	nextHb    int64

	// Probe dedup: (initiator, target) pairs recently chased, with expiry.
	seen map[probeKey]int64
}

func newReplica(id, procs, k int) *replica {
	r := &replica{id: id, up: true, k: k}
	r.reset(procs)
	return r
}

// reset zeroes all volatile state (crash, and initial construction).
func (r *replica) reset(procs int) {
	r.view = make(map[model.TxnID]*repView)
	r.waiting = make(map[model.TxnID]*waitRec)
	r.lastHeard = make([]int64, procs)
	r.suspected = make([]bool, procs)
	r.seen = make(map[probeKey]int64)
	r.nextHb = 0
}

// viewFor returns the replica's view of t at the given epoch, creating or
// epoch-resetting it as needed.
func (r *replica) viewFor(t model.TxnID, epoch int) *repView {
	v := r.view[t]
	if v == nil || v.epoch != epoch {
		v = &repView{epoch: epoch, bound: make([]int, r.k+1)}
		r.view[t] = v
	}
	return v
}

type chaosEvent struct {
	at    int64
	apply func()
}

// buildChaos translates the fault plan's partition and processor-crash
// schedules into a sorted event list applied on the simulated clock.
func (p *Preventer) buildChaos() {
	if p.params.Faults == nil {
		return
	}
	plan := p.params.Faults.Plan()
	for i, part := range plan.Partitions {
		name := part.Name
		if name == "" {
			name = "partition"
		}
		sides := part.Sides
		if len(sides) == 0 {
			// Default split: two halves.
			var a, b []int
			for q := 0; q < p.procs; q++ {
				if q < (p.procs+1)/2 {
					a = append(a, q)
				} else {
					b = append(b, q)
				}
			}
			sides = [][]int{a, b}
		}
		key := name
		if i > 0 {
			key = name + string(rune('a'+i%26))
		}
		p.chaos = append(p.chaos, chaosEvent{at: part.At, apply: func() { p.bus.Partition(key, sides...) }})
		if part.Heal > 0 {
			p.chaos = append(p.chaos, chaosEvent{at: part.Heal, apply: func() { p.bus.Heal(key) }})
		}
	}
	for _, c := range plan.ProcCrashes {
		q := c.Proc % p.procs
		p.chaos = append(p.chaos, chaosEvent{at: c.At, apply: func() { p.crashProc(q) }})
		if c.Rejoin > 0 {
			p.chaos = append(p.chaos, chaosEvent{at: c.Rejoin, apply: func() { p.rejoinProc(q) }})
		}
	}
	sort.SliceStable(p.chaos, func(i, j int) bool { return p.chaos[i].at < p.chaos[j].at })
}

// Tick implements sched.Ticker: advance the clock, apply due chaos,
// deliver matured messages, and run every replica's periodic machinery.
func (p *Preventer) Tick(now int64) {
	if now < p.now {
		return
	}
	p.now = now
	for p.chaosIdx < len(p.chaos) && p.chaos[p.chaosIdx].at <= now {
		p.chaos[p.chaosIdx].apply()
		p.chaosIdx++
	}
	p.bus.Tick(now)
	if p.procs > 1 {
		for _, rep := range p.reps {
			if !rep.up {
				continue
			}
			p.heartbeat(rep)
		}
		p.retransmitFinishes()
		p.probeSweep()
	}
	p.graceSweep()
}

// NextWake implements sched.Waker: the earliest instant any timer or
// in-flight message needs a Tick.
func (p *Preventer) NextWake(int64) int64 {
	var next int64
	earlier := func(at int64) {
		if at > 0 && (next == 0 || at < next) {
			next = at
		}
	}
	if p.chaosIdx < len(p.chaos) {
		earlier(p.chaos[p.chaosIdx].at)
	}
	earlier(p.bus.NextDelivery())
	if p.procs > 1 {
		for _, rep := range p.reps {
			if rep.up {
				earlier(rep.nextHb)
			}
		}
		for _, fr := range p.pendingFinish {
			if p.reps[fr.origin].up {
				earlier(fr.nextSend)
			}
		}
	}
	return next
}

// heartbeat broadcasts liveness on schedule and turns prolonged silence
// into suspicion.
func (p *Preventer) heartbeat(rep *replica) {
	if p.now >= rep.nextHb {
		rep.nextHb = p.now + p.params.HeartbeatEvery
		p.bus.Broadcast(mnet.Message{Kind: mnet.Heartbeat, From: rep.id})
	}
	for q := 0; q < p.procs; q++ {
		if q == rep.id || rep.suspected[q] {
			continue
		}
		if p.now-rep.lastHeard[q] > p.params.SuspectAfter {
			rep.suspected[q] = true
		}
	}
}

// retransmitFinishes resends unacknowledged finishes with capped
// exponential backoff. A finish whose origin processor is down waits for
// the rejoin (which re-arms it); the origin's durable commit record
// survives the crash, only the daemon pauses.
func (p *Preventer) retransmitFinishes() {
	for _, t := range sortedTxns(p.pendingFinish) {
		fr := p.pendingFinish[t]
		if !p.reps[fr.origin].up || p.now < fr.nextSend {
			continue
		}
		p.sendFinish(t, fr)
	}
}

// sendFinish transmits the finish to every peer still missing an ack and
// schedules the next round.
func (p *Preventer) sendFinish(t model.TxnID, fr *finRec) {
	for _, q := range sortedProcs(fr.need) {
		p.bus.Send(mnet.Message{Kind: mnet.Finish, From: fr.origin, To: q, Txn: t, Epoch: fr.epoch})
		if fr.tries > 0 {
			p.Retransmits++
		}
	}
	fr.tries++
	shift := fr.tries - 1
	if shift > 4 {
		shift = 4
	}
	fr.nextSend = p.now + p.params.RetransmitEvery<<uint(shift)
}

// probeSweep starts (and periodically restarts) edge-chasing probes for
// requests that have been blocked past ProbeAfter. Probes are unreliable;
// periodic re-probing makes detection survive message loss.
func (p *Preventer) probeSweep() {
	for _, rep := range p.reps {
		if !rep.up {
			continue
		}
		for _, t := range sortedTxns(rep.waiting) {
			w := rep.waiting[t]
			if p.now-w.since < p.params.ProbeAfter || p.now < w.nextProbe {
				continue
			}
			w.nextProbe = p.now + p.params.ProbeEvery
			for _, u := range sortedBlockers(w.blockers) {
				p.sendProbe(rep.id, t, p.epoch[t], u, t, p.prioOf(t))
			}
		}
	}
}

// sendProbe routes a probe to the processor where target is sited; a local
// target is chased inline without touching the bus.
func (p *Preventer) sendProbe(from int, init model.TxnID, initEpoch int, target, victim model.TxnID, victimPrio int64) {
	dst, ok := p.site[target]
	if !ok {
		return
	}
	m := mnet.Message{
		Kind: mnet.Probe, From: from, To: dst,
		Txn: target, Epoch: p.epoch[target],
		Init: init, InitEpoch: initEpoch,
		Victim: victim, VictimPrio: victimPrio,
	}
	if dst == from {
		p.onProbe(m)
		return
	}
	p.bus.Send(m)
}

// graceSweep aborts transactions that cannot make progress because of an
// unreachable processor, once the grace period expires: requests stranded
// at a crashed owner, and waiters all of whose forward paths lead through
// a suspected peer.
func (p *Preventer) graceSweep() {
	for _, t := range sortedTxns(p.stranded) {
		s := p.stranded[t]
		if p.reps[s.proc].up {
			delete(p.stranded, t) // re-offer will re-decide at the live owner
			continue
		}
		if p.now-s.since > p.params.Grace {
			p.GraceAborts++
			p.enqueueVictim(t)
			delete(p.stranded, t)
		}
	}
	if p.procs == 1 {
		return
	}
	for _, rep := range p.reps {
		if !rep.up {
			continue
		}
		for _, t := range sortedTxns(rep.waiting) {
			w := rep.waiting[t]
			unreachable := false
			for u := range w.blockers {
				s, ok := p.site[u]
				if !ok || s == rep.id {
					continue
				}
				if rep.suspected[s] || !p.reps[s].up {
					unreachable = true
					break
				}
			}
			if !unreachable {
				w.strandedSince = 0
				continue
			}
			if w.strandedSince == 0 {
				w.strandedSince = p.now
				continue
			}
			if p.now-w.strandedSince > p.params.Grace {
				p.GraceAborts++
				p.enqueueVictim(t)
				w.strandedSince = p.now // don't re-fire while the abort drains
			}
		}
	}
}

// crashProc kills processor q: its soft state (views, wait records, probe
// dedup) vanishes, its in-flight mailbox dies on the bus, and every
// unfinished transaction resident on it is lost with it.
func (p *Preventer) crashProc(q int) {
	rep := p.reps[q]
	if !rep.up {
		return
	}
	rep.reset(p.procs)
	rep.up = false
	p.bus.Crash(q)
	for _, t := range sortedTxns(p.waitSite) {
		if p.waitSite[t] == q {
			delete(p.waitSite, t)
		}
	}
	for _, t := range sortedTxns(p.site) {
		if p.site[t] == q && !p.finishedTruth[t] && !p.retiredAll[t] {
			p.CrashAborts++
			p.enqueueVictim(t)
		}
	}
}

// rejoinProc restarts processor q with empty soft state: it announces
// itself, asks every peer for an anti-entropy snapshot, and the finish
// daemon resumes toward and from it.
func (p *Preventer) rejoinProc(q int) {
	rep := p.reps[q]
	if rep.up {
		return
	}
	rep.up = true
	for i := range rep.lastHeard {
		rep.lastHeard[i] = p.now
		rep.suspected[i] = false
	}
	rep.nextHb = p.now
	p.bus.Restart(q)
	if p.procs > 1 {
		p.bus.Broadcast(mnet.Message{Kind: mnet.SyncRequest, From: q})
	}
	for _, t := range sortedTxns(p.pendingFinish) {
		fr := p.pendingFinish[t]
		if fr.need[q] || fr.origin == q {
			fr.tries = 0
			fr.nextSend = p.now
		}
	}
}

// receive is the bus delivery callback: dispatch one message to its
// destination replica. Any message is liveness evidence for its sender;
// first contact after suspicion additionally triggers a resync, because
// announcements sent during the silent window are gone for good.
func (p *Preventer) receive(m mnet.Message) {
	rep := p.reps[m.To]
	if !rep.up {
		return
	}
	rep.lastHeard[m.From] = p.now
	if rep.suspected[m.From] {
		rep.suspected[m.From] = false
		if m.Kind != mnet.SyncRequest && m.Kind != mnet.SyncReply {
			p.bus.Send(mnet.Message{Kind: mnet.SyncRequest, From: m.To, To: m.From})
		}
		p.rearmFinishes(m.To, m.From)
	}
	switch m.Kind {
	case mnet.Heartbeat:
		// Liveness already recorded above.
	case mnet.Boundary:
		p.onBoundary(rep, m)
	case mnet.Finish:
		p.onFinish(rep, m)
	case mnet.FinishAck:
		p.onFinishAck(m)
	case mnet.Probe:
		p.onProbe(m)
	case mnet.SyncRequest:
		p.onSyncRequest(rep, m)
	case mnet.SyncReply:
		p.onSyncReply(rep, m)
	}
}

// rearmFinishes resets the backoff of every finish the observer originated
// that still awaits peer's ack: the peer just proved reachable again.
func (p *Preventer) rearmFinishes(observer, peer int) {
	for _, t := range sortedTxns(p.pendingFinish) {
		fr := p.pendingFinish[t]
		if fr.origin == observer && fr.need[peer] {
			fr.tries = 0
			fr.nextSend = p.now
		}
	}
}

// onBoundary merges an announcement into the replica's view. Epoch fencing
// discards announcements about rolled-back incarnations; the max-merge
// keeps the view monotone under reordering.
func (p *Preventer) onBoundary(rep *replica, m mnet.Message) {
	if p.epoch[m.Txn] != m.Epoch {
		return
	}
	v := rep.viewFor(m.Txn, m.Epoch)
	for lv := 1; lv <= p.k && lv < len(m.Bound); lv++ {
		if m.Bound[lv] > v.bound[lv] {
			v.bound[lv] = m.Bound[lv]
		}
	}
}

// onFinish records a finish and acknowledges it. The ack is sent only on
// an epoch match, so the origin keeps retransmitting rather than believing
// a dead incarnation's ack.
func (p *Preventer) onFinish(rep *replica, m mnet.Message) {
	if p.epoch[m.Txn] != m.Epoch {
		return
	}
	v := rep.viewFor(m.Txn, m.Epoch)
	v.finished = true
	p.bus.Send(mnet.Message{Kind: mnet.FinishAck, From: m.To, To: m.From, Txn: m.Txn, Epoch: m.Epoch})
}

// onFinishAck retires the transaction once the last peer acknowledges.
func (p *Preventer) onFinishAck(m mnet.Message) {
	fr := p.pendingFinish[m.Txn]
	if fr == nil || fr.epoch != m.Epoch {
		return
	}
	delete(fr.need, m.From)
	if len(fr.need) == 0 {
		p.retire(m.Txn)
	}
}

// onProbe is one hop of the edge chase: if the probed transaction is
// waiting here, the probe forwards along each of its waits-for edges,
// keeping the youngest (highest-priority-value) transaction seen; reaching
// the initiator closes a cycle and the carried victim is aborted. Each
// (initiator, target) pair is chased at most once per ProbeEvery window.
func (p *Preventer) onProbe(m mnet.Message) {
	rep := p.reps[m.To]
	if !rep.up || p.epoch[m.Txn] != m.Epoch || p.epoch[m.Init] != m.InitEpoch {
		return
	}
	w := rep.waiting[m.Txn]
	if w == nil {
		return // not blocked here: the chase dies, no deadlock via this edge
	}
	key := probeKey{init: m.Init, target: m.Txn}
	if exp, ok := rep.seen[key]; ok && p.now < exp {
		return
	}
	if len(rep.seen) > 1024 {
		for k, exp := range rep.seen {
			if p.now >= exp {
				delete(rep.seen, k)
			}
		}
	}
	rep.seen[key] = p.now + p.params.ProbeEvery
	victim, vprio := m.Victim, m.VictimPrio
	if pr := p.prioOf(m.Txn); pr > vprio || (pr == vprio && m.Txn > victim) {
		victim, vprio = m.Txn, pr
	}
	for _, u := range sortedBlockers(w.blockers) {
		if u == m.Init {
			if !p.victims[victim] && !p.finishedTruth[victim] {
				p.ProbeDeadlocks++
				p.enqueueVictim(victim)
			}
			continue
		}
		p.sendProbe(m.To, m.Init, m.InitEpoch, u, victim, vprio)
	}
}

// onSyncRequest answers anti-entropy with a snapshot of the replica's view
// table. The snapshot is copied at send time: it describes this replica's
// knowledge now, not at delivery.
func (p *Preventer) onSyncRequest(rep *replica, m mnet.Message) {
	snap := make(map[model.TxnID]mnet.SyncEntry, len(rep.view))
	for t, v := range rep.view {
		bound := make([]int, len(v.bound))
		copy(bound, v.bound)
		snap[t] = mnet.SyncEntry{Epoch: v.epoch, Bound: bound, Finished: v.finished}
	}
	p.bus.Send(mnet.Message{Kind: mnet.SyncReply, From: m.To, To: m.From, Sync: snap})
}

// onSyncReply merges a peer snapshot: per-transaction max-merge with epoch
// fencing, exactly like a batch of boundary + finish announcements.
func (p *Preventer) onSyncReply(rep *replica, m mnet.Message) {
	for t, e := range m.Sync {
		if p.epoch[t] != e.Epoch {
			continue
		}
		v := rep.viewFor(t, e.Epoch)
		for lv := 1; lv <= p.k && lv < len(e.Bound); lv++ {
			if e.Bound[lv] > v.bound[lv] {
				v.bound[lv] = e.Bound[lv]
			}
		}
		if e.Finished {
			v.finished = true
		}
	}
}

// sortedTxns returns the map's keys in sorted order (deterministic
// iteration for anything that sends messages or makes decisions).
func sortedTxns[V any](m map[model.TxnID]V) []model.TxnID {
	out := make([]model.TxnID, 0, len(m))
	for t := range m {
		out = append(out, t)
	}
	model.SortTxnIDs(out)
	return out
}

func sortedBlockers(m map[model.TxnID]bool) []model.TxnID { return sortedTxns(m) }

func sortedProcs(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for q := range m {
		out = append(out, q)
	}
	sort.Ints(out)
	return out
}
