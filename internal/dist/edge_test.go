package dist

import (
	"testing"

	"mla/internal/breakpoint"
	"mla/internal/model"
	"mla/internal/nest"
	"mla/internal/sched"
	"mla/internal/sim"
)

func TestNameIncludesDelay(t *testing.T) {
	n := nest.New(2)
	n.Add("t")
	c := New(n, breakpoint.Uniform{Levels: 2, C: 2}, 2, sim.OwnerFunc(2), 25)
	if c.Name() != "dist-prevent/d=25" {
		t.Errorf("Name = %q", c.Name())
	}
	if c.Stats() == nil {
		t.Error("Stats must not be nil")
	}
}

func TestKMismatchPanics(t *testing.T) {
	n := nest.New(3)
	n.Add("t", "g")
	defer func() {
		if recover() == nil {
			t.Error("k mismatch must panic")
		}
	}()
	New(n, breakpoint.Uniform{Levels: 2, C: 2}, 1, sim.OwnerFunc(1), 0)
}

// TestDeadlockDetectionAcrossProcessors: a cycle whose edges live at
// different processors is invisible to any single replica, so no Request
// can answer Abort synchronously. Edge-chasing probes must find it: each
// blocked replica periodically launches a probe along its waits-for edges,
// the probe hops to the processor where the blocker is sited, and a probe
// that returns to its initiator closes the cycle and aborts the youngest
// transaction seen on the path.
func TestDeadlockDetectionAcrossProcessors(t *testing.T) {
	// t1 holds x (proc 0) and wants y (proc 1); t2 holds y and wants x.
	// With k=2 and no shared group, level(t1,t2)=1: each must wait for the
	// other to finish.
	n := nest.New(2)
	n.Add("t1")
	n.Add("t2")
	spec := breakpoint.Uniform{Levels: 2, C: 2}
	owner := func(e model.EntityID) int {
		if e == "x" {
			return 0
		}
		return 1
	}
	c := New(n, spec, 2, owner, 10)
	c.Tick(0)
	c.Begin("t1", 1)
	c.Begin("t2", 2)
	if d := c.Request("t1", 1, "x"); d.Kind != sched.Grant {
		t.Fatal("t1 x")
	}
	c.Performed("t1", 1, "x", 2)
	if d := c.Request("t2", 1, "y"); d.Kind != sched.Grant {
		t.Fatal("t2 y")
	}
	c.Performed("t2", 1, "y", 2)
	if d := c.Request("t1", 2, "y"); d.Kind != sched.Wait {
		t.Fatalf("t1 on y: %v", d.Kind)
	}
	// The closing edge is at processor 0, but t1's wait record lives at
	// processor 1: no replica sees the whole cycle, so the answer is Wait,
	// not a synchronous Abort.
	if d := c.Request("t2", 2, "x"); d.Kind != sched.Wait {
		t.Fatalf("t2 on x: got %v, want Wait (cycle spans processors)", d.Kind)
	}
	// Drive the clock: probes launch after ProbeAfter, chase the cycle,
	// and surface the victim through the async abort queue.
	var victims []model.TxnID
	for now := int64(1); now <= 500 && len(victims) == 0; now += 5 {
		c.Tick(now)
		victims = append(victims, c.TakeVictims()...)
	}
	if len(victims) != 1 || victims[0] != "t2" {
		t.Fatalf("victims = %v, want the youngest (t2)", victims)
	}
	if c.ProbeDeadlocks == 0 {
		t.Error("probe deadlock counter not incremented")
	}
	c.Aborted(victims)
	// t1 can proceed after the rollback.
	if d := c.Request("t1", 2, "y"); d.Kind != sched.Grant {
		t.Fatalf("t1 on y after rollback: %v", d.Kind)
	}
}

func TestRetiredCleansState(t *testing.T) {
	n := nest.New(2)
	n.Add("t1")
	n.Add("t2")
	spec := breakpoint.Uniform{Levels: 2, C: 2}
	c := New(n, spec, 1, sim.OwnerFunc(1), 0)
	c.Begin("t1", 1)
	c.Request("t1", 1, "x")
	c.Performed("t1", 1, "x", 2)
	c.Finished("t1")
	c.Retired("t1")
	c.Begin("t2", 2)
	if d := c.Request("t2", 1, "x"); d.Kind != sched.Grant {
		t.Fatal("retired transactions impose no constraints")
	}
}

// TestDistributedPartialUnsupported: the distributed control has no
// AbortedTo hook, so the simulator falls back to full aborts even with
// PartialRecovery enabled.
func TestDistributedPartialUnsupported(t *testing.T) {
	_, wl := runBank(t, 5, 7)
	// Run again with PartialRecovery on; no panic and no partial rollbacks.
	cfg := sim.DefaultConfig()
	cfg.PartialRecovery = true
	c := New(wl.Nest, wl.Spec, cfg.Processors, sim.OwnerFunc(cfg.Processors), 5)
	res, err := sim.Run(cfg, wl.Programs, c, wl.Spec, wl.Init)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.PartialRollbacks != 0 {
		t.Errorf("partial rollbacks = %d, want 0 (unsupported)", res.Stats.PartialRollbacks)
	}
}
