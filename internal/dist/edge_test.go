package dist

import (
	"testing"

	"mla/internal/breakpoint"
	"mla/internal/model"
	"mla/internal/nest"
	"mla/internal/sched"
	"mla/internal/sim"
)

func TestNameIncludesDelay(t *testing.T) {
	n := nest.New(2)
	n.Add("t")
	c := New(n, breakpoint.Uniform{Levels: 2, C: 2}, 2, sim.OwnerFunc(2), 25)
	if c.Name() != "dist-prevent/d=25" {
		t.Errorf("Name = %q", c.Name())
	}
	if c.Stats() == nil {
		t.Error("Stats must not be nil")
	}
}

func TestKMismatchPanics(t *testing.T) {
	n := nest.New(3)
	n.Add("t", "g")
	defer func() {
		if recover() == nil {
			t.Error("k mismatch must panic")
		}
	}()
	New(n, breakpoint.Uniform{Levels: 2, C: 2}, 1, sim.OwnerFunc(1), 0)
}

func TestDeadlockDetectionAcrossProcessors(t *testing.T) {
	// A genuine cross-processor deadlock: t1 holds x (proc 0) and wants y
	// (proc 1); t2 holds y and wants x. No breakpoints, level 1.
	n := nest.New(2)
	n.Add("t1")
	n.Add("t2")
	spec := breakpoint.Uniform{Levels: 2, C: 2}
	owner := func(e model.EntityID) int {
		if e == "x" {
			return 0
		}
		return 1
	}
	c := New(n, spec, 2, owner, 10)
	c.Begin("t1", 1)
	c.Begin("t2", 2)
	if d := c.Request("t1", 1, "x"); d.Kind != sched.Grant {
		t.Fatal("t1 x")
	}
	c.Performed("t1", 1, "x", 2)
	if d := c.Request("t2", 1, "y"); d.Kind != sched.Grant {
		t.Fatal("t2 y")
	}
	c.Performed("t2", 1, "y", 2)
	// With k=2, level(t1,t2)=1: each must wait for the other to finish.
	if d := c.Request("t1", 2, "y"); d.Kind != sched.Wait {
		t.Fatalf("t1 on y: %v", d.Kind)
	}
	d := c.Request("t2", 2, "x")
	if d.Kind != sched.Abort {
		t.Fatalf("t2 on x should close the deadlock, got %v", d.Kind)
	}
	if len(d.Victims) != 1 || d.Victims[0] != "t2" {
		t.Errorf("victim = %v, want the youngest (t2)", d.Victims)
	}
	c.Aborted(d.Victims)
	// t1 can proceed after the rollback.
	if d := c.Request("t1", 2, "y"); d.Kind != sched.Grant {
		t.Fatalf("t1 on y after rollback: %v", d.Kind)
	}
}

func TestRetiredCleansState(t *testing.T) {
	n := nest.New(2)
	n.Add("t1")
	n.Add("t2")
	spec := breakpoint.Uniform{Levels: 2, C: 2}
	c := New(n, spec, 1, sim.OwnerFunc(1), 0)
	c.Begin("t1", 1)
	c.Request("t1", 1, "x")
	c.Performed("t1", 1, "x", 2)
	c.Finished("t1")
	c.Retired("t1")
	c.Begin("t2", 2)
	if d := c.Request("t2", 1, "x"); d.Kind != sched.Grant {
		t.Fatal("retired transactions impose no constraints")
	}
}

// TestDistributedPartialUnsupported: the distributed control has no
// AbortedTo hook, so the simulator falls back to full aborts even with
// PartialRecovery enabled.
func TestDistributedPartialUnsupported(t *testing.T) {
	_, wl := runBank(t, 5, 7)
	// Run again with PartialRecovery on; no panic and no partial rollbacks.
	cfg := sim.DefaultConfig()
	cfg.PartialRecovery = true
	c := New(wl.Nest, wl.Spec, cfg.Processors, sim.OwnerFunc(cfg.Processors), 5)
	res, err := sim.Run(cfg, wl.Programs, c, wl.Spec, wl.Init)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.PartialRollbacks != 0 {
		t.Errorf("partial rollbacks = %d, want 0 (unsupported)", res.Stats.PartialRollbacks)
	}
}
