package dist

import (
	"testing"

	"mla/internal/bank"
	"mla/internal/breakpoint"
	"mla/internal/coherent"
	"mla/internal/fault"
	"mla/internal/model"
	"mla/internal/nest"
	mnet "mla/internal/net"
	"mla/internal/sim"
)

// TestNetFaultDropAndDelay drives the control directly through a scripted
// network policy: a dropped boundary announcement leaves the remote
// replica's view stale (the owner replica still learns its own boundary);
// a delayed one matures after the extra latency, even at Delay 0.
func TestNetFaultDropAndDelay(t *testing.T) {
	n := nest.New(3)
	n.Add("t1", "g")
	n.Add("t2", "g")
	spec := breakpoint.Uniform{Levels: 3, C: 2}
	owner := func(e model.EntityID) int {
		if e == "x" {
			return 0
		}
		return 1
	}
	drop, extra := true, int64(0)
	c := NewNet(n, spec, Params{
		Procs: 2, Owner: owner, Delay: 0,
		NetPolicy: func(m mnet.Message) (bool, int64) {
			if m.Kind != mnet.Boundary {
				return false, 0
			}
			return drop, extra
		},
	})
	c.Tick(0)
	c.Begin("t1", 1)
	c.Request("t1", 1, "x")
	c.Performed("t1", 1, "x", 2)
	if v := c.reps[0].view["t1"]; v == nil || v.bound[2] != 1 {
		t.Fatal("owner replica must learn its own boundary despite the drop")
	}
	if c.reps[1].view["t1"] != nil {
		t.Fatal("dropped announcement must not reach the remote replica")
	}
	if c.NetStats().Dropped == 0 {
		t.Fatal("policy drop not accounted")
	}

	// A delayed (not dropped) announcement matures after the extra
	// latency, even at Delay 0.
	drop, extra = false, 30
	c.Request("t1", 2, "x")
	c.Performed("t1", 2, "x", 2)
	if v := c.reps[1].view["t1"]; v != nil && v.bound[2] != 0 {
		t.Fatal("delayed announcement arrived instantly")
	}
	c.Tick(29)
	if v := c.reps[1].view["t1"]; v != nil && v.bound[2] != 0 {
		t.Fatal("announcement matured early")
	}
	c.Tick(30)
	if v := c.reps[1].view["t1"]; v == nil || v.bound[2] != 2 {
		t.Fatal("delayed announcement never matured")
	}
}

// TestNetFaultSoundness: with every kind of bus message randomly dropped
// and delayed by the seeded fault injector, the distributed preventer
// still admits only Theorem-2-correctable executions and preserves every
// banking invariant — message loss can cost waits and aborts, never
// correctness.
func TestNetFaultSoundness(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		p := bank.DefaultParams()
		p.Transfers = 14
		p.BankAudits = 1
		p.CreditorAudits = 2
		p.Seed = seed
		wl := bank.Generate(p)
		cfg := sim.DefaultConfig()
		inj := fault.New(fault.Plan{
			Seed:          seed,
			NetDropRate:   0.3,
			NetDelayRate:  0.3,
			NetExtraDelay: 40,
		})
		c := NewNet(wl.Nest, wl.Spec, Params{
			Procs:  cfg.Processors,
			Owner:  sim.OwnerFunc(cfg.Processors),
			Delay:  10,
			Faults: inj,
		})
		res, err := sim.Run(cfg, wl.Programs, c, wl.Spec, wl.Init)
		if err != nil {
			t.Fatalf("seed=%d: %v", seed, err)
		}
		if c.NetStats().Dropped == 0 {
			t.Errorf("seed=%d: a 30%% drop rate dropped nothing", seed)
		}
		inv := wl.Check(res.Exec, res.Final)
		if !inv.ConservationOK {
			t.Errorf("seed=%d: money not conserved under lossy messaging", seed)
		}
		if inv.AuditsInexact > 0 {
			t.Errorf("seed=%d: inexact audits", seed)
		}
		if inv.TraceValid != nil {
			t.Errorf("seed=%d: %v", seed, inv.TraceValid)
		}
		ok, err := coherent.Correctable(res.Exec, wl.Nest, wl.Spec)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Errorf("seed=%d: non-correctable execution admitted", seed)
		}
	}
}
