package dist

import (
	"testing"

	"mla/internal/bank"
	"mla/internal/breakpoint"
	"mla/internal/coherent"
	"mla/internal/fault"
	"mla/internal/model"
	"mla/internal/nest"
	"mla/internal/sim"
)

// TestAnnounceFaultDropAndDelay drives the control directly: a dropped
// boundary announcement leaves the remote processor's view stale (the owner
// still learns its own boundary), a delayed one matures after the extra
// latency, and a finish announcement is delayed but never dropped.
func TestAnnounceFaultDropAndDelay(t *testing.T) {
	n := nest.New(3)
	n.Add("t1", "g")
	n.Add("t2", "g")
	spec := breakpoint.Uniform{Levels: 3, C: 2}
	owner := func(e model.EntityID) int {
		if e == "x" {
			return 0
		}
		return 1
	}
	c := New(n, spec, 2, owner, 0)
	drop, extra := true, int64(0)
	c.AnnounceFault = func() (bool, int64) { return drop, extra }
	c.Tick(0)
	c.Begin("t1", 1)
	c.Request("t1", 1, "x")
	c.Performed("t1", 1, "x", 2)
	d1 := c.active["t1"]
	if d1.view[0][2] != 1 {
		t.Fatalf("owner view = %d, want 1 (the owner learns its own boundary)", d1.view[0][2])
	}
	if d1.view[1][2] != 0 {
		t.Fatalf("remote view = %d, want 0 (the announcement was dropped)", d1.view[1][2])
	}

	// A delayed (not dropped) announcement matures after the extra latency,
	// even at Delay 0.
	drop, extra = false, 30
	c.Request("t1", 2, "x")
	c.Performed("t1", 2, "x", 2)
	if d1.view[1][2] != 0 {
		t.Fatal("delayed announcement arrived instantly")
	}
	c.Tick(29)
	if d1.view[1][2] != 0 {
		t.Fatal("announcement matured early")
	}
	c.Tick(30)
	if d1.view[1][2] != 2 {
		t.Fatalf("remote view = %d after maturation, want 2", d1.view[1][2])
	}

	// Finish announcements ignore the drop verdict — only the delay applies.
	drop, extra = true, 40
	c.Finished("t1")
	if d1.viewFinished[0] || d1.viewFinished[1] {
		t.Fatal("finish arrived instantly despite the extra delay")
	}
	c.Tick(70) // now(30) + extra(40)
	if !d1.viewFinished[0] || !d1.viewFinished[1] {
		t.Fatal("finish announcement must always arrive (liveness)")
	}
}

// TestAnnounceFaultSoundness: with announcements randomly dropped and
// delayed by the fault injector, the distributed preventer still admits
// only Theorem-2-correctable executions and preserves every banking
// invariant — message loss can cost waits, never correctness.
func TestAnnounceFaultSoundness(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		p := bank.DefaultParams()
		p.Transfers = 14
		p.BankAudits = 1
		p.CreditorAudits = 2
		p.Seed = seed
		wl := bank.Generate(p)
		cfg := sim.DefaultConfig()
		inj := fault.New(fault.Plan{
			Seed:               seed,
			AnnounceDropRate:   0.3,
			AnnounceDelayRate:  0.3,
			AnnounceExtraDelay: 40,
		})
		c := New(wl.Nest, wl.Spec, cfg.Processors, sim.OwnerFunc(cfg.Processors), 10)
		drops := 0
		c.AnnounceFault = func() (bool, int64) {
			d, e := inj.Announce()
			if d {
				drops++
			}
			return d, e
		}
		res, err := sim.Run(cfg, wl.Programs, c, wl.Spec, wl.Init)
		if err != nil {
			t.Fatalf("seed=%d: %v", seed, err)
		}
		if drops == 0 {
			t.Errorf("seed=%d: a 30%% drop rate dropped nothing", seed)
		}
		inv := wl.Check(res.Exec, res.Final)
		if !inv.ConservationOK {
			t.Errorf("seed=%d: money not conserved under lossy announcements", seed)
		}
		if inv.AuditsInexact > 0 {
			t.Errorf("seed=%d: inexact audits", seed)
		}
		if inv.TraceValid != nil {
			t.Errorf("seed=%d: %v", seed, inv.TraceValid)
		}
		ok, err := coherent.Correctable(res.Exec, wl.Nest, wl.Spec)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Errorf("seed=%d: non-correctable execution admitted", seed)
		}
	}
}
