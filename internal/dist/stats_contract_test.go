package dist

import (
	"testing"

	"mla/internal/bank"
	"mla/internal/breakpoint"
	"mla/internal/model"
	"mla/internal/nest"
	"mla/internal/sched"
	"mla/internal/sim"
)

// contractFixture builds one control of each kind over the same k=3 nest.
func contractFixture() (map[string]sched.Control, *nest.Nest, breakpoint.Spec) {
	n := nest.New(3)
	n.Add("t1", "g")
	n.Add("t2", "g")
	n.Add("t3", "solo")
	spec := breakpoint.Uniform{Levels: 3, C: 2}
	procs := 4
	return map[string]sched.Control{
		"prevent":      sched.NewPreventer(n, spec),
		"detect":       sched.NewDetector(n, spec),
		"2pl":          sched.NewTwoPhase(),
		"tso":          sched.NewTimestamp(),
		"serial":       sched.NewSerial(),
		"none":         sched.NewNone(),
		"dist-prevent": New(n, spec, procs, sim.OwnerFunc(procs), 0),
	}, n, spec
}

// TestStatsAbortContractAcrossControls drives every control through the
// same harness-level forced-abort scenario: the accounting contract says
// Stats.Aborts counts victims, once each, inside Aborted — so all controls
// must report the identical total regardless of how (or whether) they
// would have decided the aborts themselves.
func TestStatsAbortContractAcrossControls(t *testing.T) {
	controls, _, _ := contractFixture()
	for name, c := range controls {
		c.Begin("t1", 1)
		c.Begin("t2", 2)
		c.Begin("t3", 3)
		// One granted step for whoever gets it — grant patterns legitimately
		// differ across controls, but abort accounting must not.
		if d := c.Request("t1", 1, "x"); d.Kind == sched.Grant {
			c.Performed("t1", 1, "x", 2)
		}
		// The harness rolls back two victims (e.g. a stall break closed over
		// a cascade), then, after restarts, a single further victim.
		c.Aborted([]model.TxnID{"t1", "t2"})
		c.Begin("t1", 4)
		c.Begin("t2", 5)
		c.Aborted([]model.TxnID{"t3"})
		if got := c.Stats().Aborts; got != 3 {
			t.Errorf("%s: Stats.Aborts = %d after 3 victim rollbacks, want 3", name, got)
		}
	}
}

// TestAbortDecisionDoesNotCount: a Request that answers Abort must leave
// Stats.Aborts untouched (the harness echoes the victims back through
// Aborted); only Wounds is counted at decision time.
func TestAbortDecisionDoesNotCount(t *testing.T) {
	// TwoPhase: classic deadlock, the decision wounds the younger holder.
	tp := sched.NewTwoPhase()
	tp.Begin("old", 1)
	tp.Begin("young", 9)
	tp.Request("young", 1, "x")
	tp.Request("old", 1, "y")
	tp.Request("young", 2, "y") // young waits on old
	d := tp.Request("old", 2, "x")
	if d.Kind != sched.Abort {
		t.Fatalf("expected deadlock abort decision, got %v", d.Kind)
	}
	if tp.Stats().Aborts != 0 {
		t.Errorf("2pl: abort decision bumped Stats.Aborts to %d", tp.Stats().Aborts)
	}
	if tp.Stats().Wounds != 1 {
		t.Errorf("2pl: wounds = %d, want 1", tp.Stats().Wounds)
	}
	tp.Aborted(d.Victims)
	if tp.Stats().Aborts != len(d.Victims) {
		t.Errorf("2pl: Stats.Aborts = %d after Aborted(%v)", tp.Stats().Aborts, d.Victims)
	}

	// Timestamp: a self-abort decision, likewise uncounted until Aborted.
	ts := sched.NewTimestamp()
	ts.Begin("t1", 5)
	ts.Begin("t2", 9)
	ts.Request("t2", 1, "x")
	ts.Performed("t2", 1, "x", 0)
	d = ts.Request("t1", 1, "x")
	if d.Kind != sched.Abort {
		t.Fatalf("expected timestamp abort decision, got %v", d.Kind)
	}
	if ts.Stats().Aborts != 0 || ts.Stats().Wounds != 0 {
		t.Errorf("tso: decision-time counters wrong: %+v", *ts.Stats())
	}
	ts.Aborted(d.Victims)
	if ts.Stats().Aborts != 1 {
		t.Errorf("tso: Stats.Aborts = %d after one victim", ts.Stats().Aborts)
	}
}

// TestControlAbortsMatchSimulator runs the same contended banking workload
// under Detector, Preventer, TwoPhase, and dist.Preventer and checks the
// contract's end-to-end consequence: without partial recovery, the
// control's victim count equals the simulator's full-rollback count
// exactly — the numbers are finally mutually comparable.
func TestControlAbortsMatchSimulator(t *testing.T) {
	p := bank.DefaultParams()
	p.Transfers = 14
	p.Families = 2
	p.BankAudits = 1
	p.CreditorAudits = 2
	cfg := sim.DefaultConfig()
	for _, name := range []string{"prevent", "detect", "2pl", "dist-prevent"} {
		wl := bank.Generate(p)
		var c sched.Control
		switch name {
		case "prevent":
			c = sched.NewPreventer(wl.Nest, wl.Spec)
		case "detect":
			c = sched.NewDetector(wl.Nest, wl.Spec)
		case "2pl":
			c = sched.NewTwoPhase()
		case "dist-prevent":
			c = New(wl.Nest, wl.Spec, cfg.Processors, sim.OwnerFunc(cfg.Processors), 5)
		}
		res, err := sim.Run(cfg, wl.Programs, c, wl.Spec, wl.Init)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Control.Aborts != res.Stats.Aborts {
			t.Errorf("%s: control counted %d victim rollbacks, simulator %d",
				name, res.Control.Aborts, res.Stats.Aborts)
		}
	}
}
