// Package dist implements a distributed variant of the Section 6
// cycle-prevention control. The paper's setting is explicitly distributed —
// entities live at processors of a network and transactions migrate between
// them — so a realistic prevention scheduler cannot consult a global,
// instantaneous picture of every transaction's breakpoint positions.
//
// The control is structured as per-processor replicas connected by a real
// (simulated) message bus (internal/net):
//
//   - The dependency structure (which steps precede which in the coherent
//     closure) is derived from entity access orders and migration, and is
//     maintained exactly — conceptually the control plane that the
//     migrating transactions themselves carry from processor to processor,
//     along with their priorities and incarnation epochs.
//   - Breakpoint positions and completions of *remote* transactions are
//     data-plane soft state: each replica holds only its own view table,
//     learned from boundary and finish messages on the bus, and decides
//     with it. A processor crash loses this soft state entirely; the
//     replica rebuilds it by anti-entropy resync when it rejoins.
//
// Staleness is safe by construction: the delay rule's wait condition is
// monotone in the announced boundary position, so a stale view can only
// under-report boundaries and make the scheduler wait longer — never admit
// an execution the fresh-view scheduler would reject. Every message the
// replicas exchange preserves that monotonicity (bounds merge by max,
// finishes are terminal, epochs fence incarnations so rollback-invalidated
// progress cannot resurrect), which is why arbitrary loss, delay,
// reordering, partitions, and crashes cost only waits and aborts, never
// wrong admissions. The StaleWaits counter measures the cost (waits a
// zero-delay view would have granted); experiments E13 and E18 sweep the
// delay and the failure space.
//
// Robustness machinery, all replica-local and message-driven:
//
//   - Finish announcements, which strand remote waiters if lost, are
//     delivered by retransmission with capped exponential backoff until
//     each peer acknowledges; anti-entropy resync covers peers that were
//     crashed or partitioned through every retransmission.
//   - A heartbeat failure detector makes each replica suspect silent
//     peers; once a waiter has been blocked on a transaction sited at a
//     suspected (or crashed) processor for longer than the grace period,
//     the waiter is aborted — partitions cost aborts, never eternal hangs.
//   - Deadlocks local to one processor are caught synchronously; cycles
//     spanning processors are found by edge-chasing probes forwarded along
//     waits-for edges, with no global graph anywhere — detection survives
//     the loss of any single node.
package dist

import (
	"fmt"

	"mla/internal/breakpoint"
	"mla/internal/coherent"
	"mla/internal/fault"
	"mla/internal/model"
	"mla/internal/nest"
	mnet "mla/internal/net"
	"mla/internal/sched"
	"mla/internal/telemetry"
)

// Params configures the distributed control. Zero timer fields get
// defaults derived from Delay so larger announcement latencies do not
// trip the failure detector spuriously.
type Params struct {
	Procs int
	Owner func(model.EntityID) int
	// Delay is the bus's one-hop message latency in simulator units.
	Delay int64

	// HeartbeatEvery is the failure detector's broadcast period.
	HeartbeatEvery int64
	// SuspectAfter is how long a peer may stay silent before it is
	// suspected. Must exceed Delay + HeartbeatEvery or live peers flap.
	SuspectAfter int64
	// Grace is how long a waiter may stay blocked on a transaction sited
	// at a suspected or crashed processor before it is aborted.
	Grace int64
	// RetransmitEvery is the base finish-retransmission period; the
	// backoff doubles per round, capped at 16x.
	RetransmitEvery int64
	// ProbeAfter is how long a request waits before its replica starts
	// edge-chasing deadlock probes for it.
	ProbeAfter int64
	// ProbeEvery is the re-probe period (probes are unreliable messages;
	// re-probing makes detection survive loss).
	ProbeEvery int64

	// Faults supplies per-message drop/delay verdicts and the scheduled
	// partition and processor-crash chaos (fault.Plan.Partitions,
	// fault.Plan.ProcCrashes). Nil means a reliable, failure-free network.
	Faults *fault.Injector
	// NetPolicy, when non-nil, overrides Faults for per-message verdicts.
	// Test seam for scripting exact message fates.
	NetPolicy mnet.Policy
}

// DefaultHeartbeatEvery is the failure detector's default broadcast period,
// exported so internal/shard's simulator control derives its suspicion and
// grace timers from the same base and the two message-driven layers trip
// failure detection identically on the same chaos grid.
const DefaultHeartbeatEvery int64 = 20

func (pr Params) withDefaults() Params {
	if pr.HeartbeatEvery == 0 {
		pr.HeartbeatEvery = DefaultHeartbeatEvery
	}
	if pr.SuspectAfter == 0 {
		pr.SuspectAfter = pr.Delay + 3*pr.HeartbeatEvery
	}
	if pr.Grace == 0 {
		pr.Grace = 2 * pr.SuspectAfter
	}
	if pr.RetransmitEvery == 0 {
		pr.RetransmitEvery = 2*pr.Delay + pr.HeartbeatEvery
	}
	if pr.ProbeAfter == 0 {
		pr.ProbeAfter = 2*pr.Delay + pr.HeartbeatEvery
	}
	if pr.ProbeEvery == 0 {
		pr.ProbeEvery = pr.ProbeAfter
	}
	return pr
}

// Preventer is the distributed prevention control: a facade over
// per-processor replicas that the simulator drives through sched.Control,
// sched.Ticker (clock), sched.Waker (protocol timers), and
// sched.AsyncAborter (probe- and failure-detector-initiated aborts).
type Preventer struct {
	nest   *nest.Nest
	spec   breakpoint.Spec
	k      int
	params Params
	owner  func(model.EntityID) int
	procs  int

	bus  *mnet.Bus
	reps []*replica

	// Control plane, carried by the migrating transactions themselves:
	// the exact closure, priorities, incarnation epochs, and the processor
	// each transaction currently sits at.
	oc       *coherent.Online
	prio     map[model.TxnID]int64
	epoch    map[model.TxnID]int
	site     map[model.TxnID]int
	waitSite map[model.TxnID]int // processor holding t's wait record

	// finishedTruth is the zero-delay ground truth (staleness attribution
	// and victim filtering only — replicas never consult it to decide).
	finishedTruth map[model.TxnID]bool
	// retiredAll marks finishes acknowledged by every processor: the
	// durable commit-log fact any replica may rely on after pruning its
	// soft state. Monotone while the transaction stays finished; cleared
	// if a cascade rolls the finished transaction back.
	retiredAll map[model.TxnID]bool

	// pendingFinish is the finish-retransmission daemon's state, acting
	// for the transaction's durable commit coordinator at its origin.
	pendingFinish map[model.TxnID]*finRec

	// stranded tracks requests addressed to a crashed processor: the step
	// cannot even be decided there, and after Grace the waiter aborts.
	stranded map[model.TxnID]*strandRec

	victims map[model.TxnID]bool // asynchronous abort queue

	chaos    []chaosEvent
	chaosIdx int

	now   int64
	stats sched.Stats

	StaleWaits     int // waits a zero-delay view would have granted
	GraceAborts    int // waiters aborted after the unreachability grace period
	CrashAborts    int // transactions lost with their crashed processor
	ProbeDeadlocks int // deadlock cycles closed by edge-chasing probes
	Retransmits    int // finish retransmissions beyond the first round
}

type finRec struct {
	origin   int
	epoch    int
	need     map[int]bool // peers that have not acknowledged yet
	tries    int
	nextSend int64
}

type strandRec struct {
	proc  int
	since int64
}

// New creates the distributed control over a reliable, failure-free
// network. owner maps entities to processors [0, procs); delay is the
// one-hop message latency.
func New(n *nest.Nest, spec breakpoint.Spec, procs int, owner func(model.EntityID) int, delay int64) *Preventer {
	return NewNet(n, spec, Params{Procs: procs, Owner: owner, Delay: delay})
}

// NewNet creates the distributed control with full network, failure, and
// chaos configuration.
func NewNet(n *nest.Nest, spec breakpoint.Spec, pr Params) *Preventer {
	if n.K() != spec.K() {
		panic("dist: nest and breakpoint spec disagree on k")
	}
	if pr.Procs < 1 {
		panic("dist: need at least one processor")
	}
	if pr.Owner == nil {
		panic("dist: need an entity owner function")
	}
	pr = pr.withDefaults()
	p := &Preventer{
		nest:          n,
		spec:          spec,
		k:             n.K(),
		params:        pr,
		owner:         pr.Owner,
		procs:         pr.Procs,
		oc:            coherent.NewOnline(n.K(), n.Level),
		prio:          make(map[model.TxnID]int64),
		epoch:         make(map[model.TxnID]int),
		site:          make(map[model.TxnID]int),
		waitSite:      make(map[model.TxnID]int),
		finishedTruth: make(map[model.TxnID]bool),
		retiredAll:    make(map[model.TxnID]bool),
		pendingFinish: make(map[model.TxnID]*finRec),
		stranded:      make(map[model.TxnID]*strandRec),
		victims:       make(map[model.TxnID]bool),
	}
	pol := pr.NetPolicy
	if pol == nil && pr.Faults != nil {
		inj := pr.Faults
		pol = func(m mnet.Message) (bool, int64) { return inj.Net(m.Kind.String()) }
	}
	p.bus = mnet.New(pr.Procs, pr.Delay, pol)
	p.bus.OnDeliver(p.receive)
	p.reps = make([]*replica, pr.Procs)
	for i := range p.reps {
		p.reps[i] = newReplica(i, pr.Procs, p.k)
	}
	p.buildChaos()
	return p
}

// Name implements sched.Control.
func (p *Preventer) Name() string { return fmt.Sprintf("dist-prevent/d=%d", p.params.Delay) }

// NetStats returns the bus traffic counters.
func (p *Preventer) NetStats() mnet.Stats { return p.bus.Stats() }

// AttachTelemetry records one replica-rpc span per bus message into tel
// (see net.Bus.AttachTelemetry). Call before the run. FillTelemetry is the
// matching end-of-run registry fold.
func (p *Preventer) AttachTelemetry(tel *telemetry.Telemetry) { p.bus.AttachTelemetry(tel) }

// FillTelemetry folds the control's end-of-run counters — bus traffic,
// scheduler decisions, and the chaos accounting (stale waits, grace and
// crash aborts, probe deadlocks, retransmits) — into tel's registry under
// the net.* and dist.* names. Repeated runs aggregate.
func (p *Preventer) FillTelemetry(tel *telemetry.Telemetry) {
	if tel == nil {
		return
	}
	tel.Metrics.ObserveSnapshot("net", p.bus.Snapshot())
	tel.Metrics.ObserveSnapshot("dist", struct {
		StaleWaits, GraceAborts, CrashAborts, ProbeDeadlocks, Retransmits int
	}{p.StaleWaits, p.GraceAborts, p.CrashAborts, p.ProbeDeadlocks, p.Retransmits})
	tel.Metrics.ObserveSnapshot("dist.control", p.Stats().Snapshot())
}

// Begin implements sched.Control. Each (re)start bumps the transaction's
// epoch, fencing every message about the previous incarnation.
func (p *Preventer) Begin(t model.TxnID, prio int64) {
	p.prio[t] = prio
	p.epoch[t]++
	p.forget(t)
}

// forget erases all per-transaction state except priority and epoch.
func (p *Preventer) forget(t model.TxnID) {
	delete(p.finishedTruth, t)
	delete(p.retiredAll, t)
	delete(p.pendingFinish, t)
	delete(p.stranded, t)
	delete(p.victims, t)
	delete(p.site, t)
	p.clearWait(t)
	for _, rep := range p.reps {
		delete(rep.view, t)
		delete(rep.waiting, t)
	}
}

// closedAt: replica rep's (possibly stale, possibly crash-emptied) verdict
// on whether u's step at seq is closed for a level-lv observer.
func (p *Preventer) closedAt(rep *replica, u model.TxnID, seq, lv int) bool {
	if p.retiredAll[u] {
		return true
	}
	v := rep.view[u]
	if v == nil || v.epoch != p.epoch[u] {
		return false // no (current-incarnation) knowledge: assume open
	}
	if v.finished {
		return true
	}
	return v.bound[lv] >= seq
}

// closedTrue is the zero-delay ground truth, used only to attribute waits
// to staleness.
func (p *Preventer) closedTrue(u model.TxnID, seq, lv int) bool {
	if p.finishedTruth[u] || p.retiredAll[u] {
		return true
	}
	return p.oc.SegmentClosedAfter(u, seq, lv)
}

// Request implements sched.Control: the Section 6 delay rule with exact
// closure predecessors but the owner processor's replica-local views. A
// request addressed to a crashed processor strands (and aborts after the
// grace period); deadlock cycles local to the owner processor are caught
// synchronously, cross-processor ones by probes.
func (p *Preventer) Request(t model.TxnID, seq int, x model.EntityID) sched.Decision {
	p.stats.Requests++
	proc := p.owner(x) % p.procs
	p.site[t] = proc
	rep := p.reps[proc]
	if !rep.up {
		if p.stranded[t] == nil {
			p.stranded[t] = &strandRec{proc: proc, since: p.now}
		} else {
			p.stranded[t].proc = proc
		}
		p.stats.Waits++
		return sched.Decision{Kind: sched.Wait}
	}
	delete(p.stranded, t)
	blockers := make(map[model.TxnID]bool)
	stale := true
	p.oc.ForEachPredOfNewStep(t, x, func(u model.TxnID, s int) {
		if u == t {
			return
		}
		lv := p.nest.Level(u, t)
		if !p.closedAt(rep, u, s, lv) {
			blockers[u] = true
			if !p.closedTrue(u, s, lv) {
				stale = false // a fresh view would block too
			}
		}
	})
	if len(blockers) == 0 {
		p.clearWait(t)
		p.stats.Grants++
		return sched.Decision{Kind: sched.Grant}
	}
	if stale {
		p.StaleWaits++
	}
	w := rep.waiting[t]
	if w == nil || w.seq != seq {
		p.clearWait(t)
		w = &waitRec{seq: seq, since: p.now, nextProbe: p.now + p.params.ProbeAfter}
		rep.waiting[t] = w
		p.waitSite[t] = proc
	}
	w.blockers = blockers
	if cycle := p.localCycle(rep, t); len(cycle) > 0 {
		victim := cycle[0]
		best := p.prioOf(victim)
		for _, u := range cycle[1:] {
			if pr := p.prioOf(u); pr > best || (pr == best && u > victim) {
				victim, best = u, pr
			}
		}
		p.clearWait(t)
		if victim != t {
			p.stats.Wounds++
		}
		return sched.Decision{Kind: sched.Abort, Victims: []model.TxnID{victim}}
	}
	p.stats.Waits++
	return sched.Decision{Kind: sched.Wait}
}

func (p *Preventer) prioOf(t model.TxnID) int64 {
	if pr, ok := p.prio[t]; ok {
		return pr
	}
	return -1
}

// clearWait drops t's wait record wherever it is held.
func (p *Preventer) clearWait(t model.TxnID) {
	if q, ok := p.waitSite[t]; ok {
		delete(p.reps[q].waiting, t)
		delete(p.waitSite, t)
	}
}

// Performed implements sched.Control: the step enters the exact closure;
// the new boundary vector is merged into the owner replica's view
// immediately and broadcast to every peer as an (unreliable) boundary
// announcement — loss only under-reports progress.
func (p *Preventer) Performed(t model.TxnID, seq int, x model.EntityID, cut int) {
	if !p.oc.AddStep(t, x) {
		panic(fmt.Sprintf("dist: preventer admitted a cyclic step %s on %s", t, x))
	}
	if cut > 0 {
		p.oc.AddCut(t, cut)
	}
	proc := p.owner(x) % p.procs
	p.site[t] = proc
	// Ground-truth boundary vector for the announcement: the latest
	// boundary of coarseness ≤ lv is derivable from the closure — position
	// q is closed for lv iff a boundary ≥ q exists.
	bound := make([]int, p.k+1)
	for lv := 1; lv <= p.k; lv++ {
		for q := seq; q >= 1; q-- {
			if p.oc.SegmentClosedAfter(t, q, lv) {
				bound[lv] = q
				break
			}
		}
	}
	rep := p.reps[proc]
	if !rep.up {
		return // processor died under the step; the announcement dies with it
	}
	v := rep.viewFor(t, p.epoch[t])
	for lv := 1; lv <= p.k; lv++ {
		if bound[lv] > v.bound[lv] {
			v.bound[lv] = bound[lv]
		}
	}
	if p.procs > 1 {
		b := make([]int, p.k+1)
		copy(b, bound)
		p.bus.Broadcast(mnet.Message{Kind: mnet.Boundary, From: proc, Txn: t, Epoch: p.epoch[t], Bound: b})
	}
}

// Finished implements sched.Control. The finish is recorded at the origin
// replica and handed to the retransmission daemon, which resends it with
// capped backoff until every peer acknowledges; only then is the
// transaction's soft state pruned everywhere (retire).
func (p *Preventer) Finished(t model.TxnID) {
	p.finishedTruth[t] = true
	delete(p.stranded, t)
	p.clearWait(t)
	origin, ok := p.site[t]
	if !ok {
		origin = 0
		p.site[t] = 0
	}
	ep := p.epoch[t]
	if rep := p.reps[origin]; rep.up {
		rep.viewFor(t, ep).finished = true
	}
	need := make(map[int]bool, p.procs-1)
	for q := 0; q < p.procs; q++ {
		if q != origin {
			need[q] = true
		}
	}
	if len(need) == 0 {
		p.retire(t)
		return
	}
	fr := &finRec{origin: origin, epoch: ep, need: need, nextSend: p.now}
	p.pendingFinish[t] = fr
	p.sendFinish(t, fr)
}

// retire prunes a universally-acknowledged finish: every replica knows the
// transaction finished, so its view tables can no longer influence any
// decision and the durable retiredAll fact answers for it from here on.
func (p *Preventer) retire(t model.TxnID) {
	p.retiredAll[t] = true
	delete(p.pendingFinish, t)
	delete(p.stranded, t)
	delete(p.site, t)
	for _, rep := range p.reps {
		delete(rep.view, t)
	}
}

// Retired implements the simulator's optional retirer hook. Memory
// reclamation here is driven by the finish acknowledgment protocol (see
// retire), not by commit time, so there is nothing left to do.
func (p *Preventer) Retired(model.TxnID) {}

// Aborted implements sched.Control. The epoch bump fences every in-flight
// message about the rolled-back incarnation; replica soft state about the
// victims is erased synchronously (the rollback is a control-plane event
// the transactions themselves carry, like Begin).
func (p *Preventer) Aborted(victims []model.TxnID) {
	p.stats.Aborts += len(victims)
	drop := make(map[model.TxnID]bool, len(victims))
	for _, t := range victims {
		drop[t] = true
		p.epoch[t]++
		p.forget(t)
	}
	for _, rep := range p.reps {
		for _, w := range rep.waiting {
			for t := range drop {
				delete(w.blockers, t)
			}
		}
	}
	p.oc.Rebuild(drop)
}

// DeadlineAborted implements the sched.DeadlineAborter capability.
func (p *Preventer) DeadlineAborted(model.TxnID) { p.stats.Deadlines++ }

// Stats implements sched.Control.
func (p *Preventer) Stats() *sched.Stats { return &p.stats }

// TakeVictims implements sched.AsyncAborter: transactions the protocol
// machinery (probes, failure detector, processor crashes) decided to abort
// since the last drain, sorted for determinism.
func (p *Preventer) TakeVictims() []model.TxnID {
	if len(p.victims) == 0 {
		return nil
	}
	out := make([]model.TxnID, 0, len(p.victims))
	for t := range p.victims {
		if p.finishedTruth[t] {
			continue
		}
		out = append(out, t)
	}
	p.victims = make(map[model.TxnID]bool)
	model.SortTxnIDs(out)
	return out
}

func (p *Preventer) enqueueVictim(t model.TxnID) {
	if _, began := p.prio[t]; !began || p.finishedTruth[t] || p.retiredAll[t] {
		return
	}
	p.victims[t] = true
}

// localCycle is a DFS over the waits-for edges recorded at one replica
// (deterministic order). Cycles spanning replicas have no single holder of
// all their edges; those are found by probes.
func (p *Preventer) localCycle(rep *replica, t model.TxnID) []model.TxnID {
	var path []model.TxnID
	onPath := map[model.TxnID]bool{}
	visited := map[model.TxnID]bool{}
	var dfs func(u model.TxnID) []model.TxnID
	dfs = func(u model.TxnID) []model.TxnID {
		if onPath[u] {
			for i, w := range path {
				if w == u {
					return append([]model.TxnID(nil), path[i:]...)
				}
			}
			return path
		}
		if visited[u] {
			return nil
		}
		visited[u] = true
		onPath[u] = true
		path = append(path, u)
		if w := rep.waiting[u]; w != nil {
			next := make([]model.TxnID, 0, len(w.blockers))
			for v := range w.blockers {
				next = append(next, v)
			}
			model.SortTxnIDs(next)
			for _, v := range next {
				if c := dfs(v); c != nil {
					return c
				}
			}
		}
		onPath[u] = false
		path = path[:len(path)-1]
		return nil
	}
	return dfs(t)
}
