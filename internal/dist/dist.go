// Package dist implements a distributed variant of the Section 6
// cycle-prevention control. The paper's setting is explicitly distributed —
// entities live at processors of a network and transactions migrate between
// them — so a realistic prevention scheduler cannot consult a global,
// instantaneous picture of every transaction's breakpoint positions.
//
// Split of knowledge:
//
//   - The dependency structure (which steps precede which in the coherent
//     closure) is derived from entity access orders and migration, and is
//     maintained exactly — conceptually the control plane that the
//     migrating transactions themselves carry from processor to processor.
//   - Breakpoint positions and completions of *remote* transactions are
//     data-plane state learned from asynchronous announcements that take
//     Delay time units to arrive: each processor holds a stale view of
//     remote progress and decides with it.
//
// Staleness is safe by construction: the delay rule's wait condition is
// monotone in the announced boundary position, so a stale view can only
// under-report boundaries and make the scheduler wait longer — never admit
// an execution the fresh-view scheduler would reject. The StaleWaits
// counter measures exactly this cost (waits that a zero-delay view would
// have granted), and experiment E13 sweeps the announcement delay.
//
// Deadlock detection uses one waits-for graph across processors — the
// standard "centralized detector" deployment; its messages are not modeled.
package dist

import (
	"fmt"

	"mla/internal/breakpoint"
	"mla/internal/coherent"
	"mla/internal/model"
	"mla/internal/nest"
	"mla/internal/sched"
)

// Preventer is the distributed prevention control. It implements
// sched.Control plus Tick (the simulator's clock hook, used to mature
// pending announcements).
type Preventer struct {
	nest  *nest.Nest
	spec  breakpoint.Spec
	k     int
	owner func(model.EntityID) int
	procs int

	// Delay is the announcement propagation time in simulator units.
	Delay int64

	// AnnounceFault, when non-nil, is consulted once per announcement and
	// may drop it or add extra latency (see fault.Injector.Announce, the
	// usual supplier). Dropped or delayed boundary announcements are safe
	// by the monotone-wait argument: remote processors keep an older view,
	// which only under-reports boundaries and makes them wait longer.
	// Finish announcements are never dropped — a committed transaction
	// whose finish never arrives would leave remote waiters stuck forever
	// (a liveness failure, not a safety one) — so for them only the extra
	// delay applies.
	AnnounceFault func() (drop bool, extra int64)

	now      int64
	oc       *coherent.Online
	prio     map[model.TxnID]int64
	finished map[model.TxnID]bool
	active   map[model.TxnID]*dtxn
	retired  map[model.TxnID]bool // committed; view tables freed once every processor learned the finish

	pending []announcement
	waitFor map[model.TxnID]map[model.TxnID]bool

	stats      sched.Stats
	StaleWaits int // waits a zero-delay view would have granted
}

type dtxn struct {
	// view[p][lv]: processor p's knowledge of this transaction's latest
	// boundary position of coarseness ≤ lv. The ground truth lives in the
	// shared closure (SegmentClosedAfter).
	view         [][]int
	viewFinished []bool
}

type announcement struct {
	at       int64
	txn      model.TxnID
	bound    []int // per level; nil for a finish announcement
	finished bool
}

// New creates the distributed control. owner maps entities to processors
// [0, procs); delay is the announcement latency.
func New(n *nest.Nest, spec breakpoint.Spec, procs int, owner func(model.EntityID) int, delay int64) *Preventer {
	if n.K() != spec.K() {
		panic("dist: nest and breakpoint spec disagree on k")
	}
	if procs < 1 {
		panic("dist: need at least one processor")
	}
	return &Preventer{
		nest:     n,
		spec:     spec,
		k:        n.K(),
		owner:    owner,
		procs:    procs,
		Delay:    delay,
		oc:       coherent.NewOnline(n.K(), n.Level),
		prio:     make(map[model.TxnID]int64),
		finished: make(map[model.TxnID]bool),
		active:   make(map[model.TxnID]*dtxn),
		retired:  make(map[model.TxnID]bool),
		waitFor:  make(map[model.TxnID]map[model.TxnID]bool),
	}
}

// Name implements sched.Control.
func (p *Preventer) Name() string { return fmt.Sprintf("dist-prevent/d=%d", p.Delay) }

// Tick matures announcements that have arrived by now. The simulator calls
// it whenever simulated time advances.
func (p *Preventer) Tick(now int64) {
	p.now = now
	kept := p.pending[:0]
	for _, a := range p.pending {
		if a.at > now {
			kept = append(kept, a)
			continue
		}
		d := p.active[a.txn]
		if d == nil {
			continue
		}
		for proc := 0; proc < p.procs; proc++ {
			if a.finished {
				d.viewFinished[proc] = true
				continue
			}
			for lv := 1; lv <= p.k; lv++ {
				if a.bound[lv] > d.view[proc][lv] {
					d.view[proc][lv] = a.bound[lv]
				}
			}
		}
		if a.finished && p.retired[a.txn] {
			// Every processor now knows the finish: the committed
			// transaction's view tables can no longer influence any decision
			// (closedAt treats a missing entry as closed), so free them.
			delete(p.active, a.txn)
			delete(p.retired, a.txn)
		}
	}
	p.pending = kept
}

// Begin implements sched.Control.
func (p *Preventer) Begin(t model.TxnID, prio int64) {
	p.prio[t] = prio
	delete(p.finished, t)
	d := &dtxn{view: make([][]int, p.procs), viewFinished: make([]bool, p.procs)}
	for i := range d.view {
		d.view[i] = make([]int, p.k+1)
	}
	p.active[t] = d
}

// closedAt: processor proc's (possibly stale) verdict on whether u's step
// at seq is closed for a level-lv observer.
func (p *Preventer) closedAt(proc int, u model.TxnID, seq, lv int) bool {
	d := p.active[u]
	if d == nil {
		return true
	}
	if d.viewFinished[proc] {
		return true
	}
	return d.view[proc][lv] >= seq
}

// closedTrue is the zero-delay ground truth, used only to attribute waits
// to staleness.
func (p *Preventer) closedTrue(u model.TxnID, seq, lv int) bool {
	if p.finished[u] {
		return true
	}
	if p.active[u] == nil {
		return true
	}
	return p.oc.SegmentClosedAfter(u, seq, lv)
}

// Request implements sched.Control: the Section 6 delay rule with exact
// closure predecessors but the owner processor's stale boundary views.
func (p *Preventer) Request(t model.TxnID, _ int, x model.EntityID) sched.Decision {
	p.stats.Requests++
	proc := p.owner(x) % p.procs
	blockers := make(map[model.TxnID]bool)
	stale := true
	for u, s := range p.oc.PredForNewStep(t, x) {
		if u == t {
			continue
		}
		lv := p.nest.Level(u, t)
		if !p.closedAt(proc, u, s, lv) {
			blockers[u] = true
			if !p.closedTrue(u, s, lv) {
				stale = false // a fresh view would block too
			}
		}
	}
	if len(blockers) == 0 {
		delete(p.waitFor, t)
		p.stats.Grants++
		return sched.Decision{Kind: sched.Grant}
	}
	if stale {
		p.StaleWaits++
	}
	p.waitFor[t] = blockers
	if cycle := p.cycleThrough(t); len(cycle) > 0 {
		victim := cycle[0]
		best := p.prioOf(victim)
		for _, u := range cycle[1:] {
			if pr := p.prioOf(u); pr > best || (pr == best && u > victim) {
				victim, best = u, pr
			}
		}
		delete(p.waitFor, t)
		if victim != t {
			p.stats.Wounds++
		}
		return sched.Decision{Kind: sched.Abort, Victims: []model.TxnID{victim}}
	}
	p.stats.Waits++
	return sched.Decision{Kind: sched.Wait}
}

func (p *Preventer) prioOf(t model.TxnID) int64 {
	if pr, ok := p.prio[t]; ok {
		return pr
	}
	return -1
}

// Performed implements sched.Control: the step enters the exact closure;
// the boundary becomes visible to x's owner immediately and to every other
// processor after Delay.
func (p *Preventer) Performed(t model.TxnID, seq int, x model.EntityID, cut int) {
	if !p.oc.AddStep(t, x) {
		panic(fmt.Sprintf("dist: preventer admitted a cyclic step %s on %s", t, x))
	}
	if cut > 0 {
		p.oc.AddCut(t, cut)
	}
	d := p.active[t]
	proc := p.owner(x) % p.procs
	// Ground-truth boundary vector for announcements.
	bound := make([]int, p.k+1)
	for lv := 1; lv <= p.k; lv++ {
		// The latest boundary of coarseness ≤ lv is derivable from the
		// closure: position q is closed for lv iff a boundary ≥ q exists.
		// Binary-search-free: walk down from seq.
		for q := seq; q >= 1; q-- {
			if p.oc.SegmentClosedAfter(t, q, lv) {
				bound[lv] = q
				break
			}
		}
	}
	for lv := 1; lv <= p.k; lv++ {
		if bound[lv] > d.view[proc][lv] {
			d.view[proc][lv] = bound[lv]
		}
	}
	drop, extra := false, int64(0)
	if p.AnnounceFault != nil {
		drop, extra = p.AnnounceFault()
	}
	switch {
	case drop:
		// The boundary announcement is lost: only x's owner learned the new
		// boundary; everyone else decides with the older (smaller) view.
	case p.Delay == 0 && extra == 0:
		for q := 0; q < p.procs; q++ {
			copy(d.view[q], bound)
		}
	default:
		b := make([]int, p.k+1)
		copy(b, bound)
		p.pending = append(p.pending, announcement{at: p.now + p.Delay + extra, txn: t, bound: b})
	}
}

// Finished implements sched.Control.
func (p *Preventer) Finished(t model.TxnID) {
	p.finished[t] = true
	d := p.active[t]
	if d == nil {
		return
	}
	extra := int64(0)
	if p.AnnounceFault != nil {
		// Drop is deliberately ignored: finish announcements must arrive.
		_, extra = p.AnnounceFault()
	}
	if p.Delay == 0 && extra == 0 {
		for q := range d.viewFinished {
			d.viewFinished[q] = true
		}
	} else {
		p.pending = append(p.pending, announcement{at: p.now + p.Delay + extra, txn: t, finished: true})
	}
	delete(p.waitFor, t)
	for _, m := range p.waitFor {
		delete(m, t)
	}
}

// Retired keeps the closure entries (see sched.Preventer.Retired) but drops
// the per-processor view tables, which no longer matter once finished:
// closedAt treats a missing entry as closed, exactly what a committed
// transaction is at every level. With Delay > 0 the tables must survive
// until the finish announcement has matured at every processor — freeing
// them earlier would let a stale view flip from "wait" to "grant" — so
// Retired marks the transaction and Tick frees it when the announcement
// lands. Keep finished[t] either way so closedTrue stays correct.
func (p *Preventer) Retired(t model.TxnID) {
	if !p.finished[t] {
		return
	}
	d := p.active[t]
	if d == nil {
		return
	}
	if p.Delay == 0 {
		delete(p.active, t)
		return
	}
	for _, f := range d.viewFinished {
		if !f {
			// The finish announcement is still in flight; Tick collects the
			// tables when it matures.
			p.retired[t] = true
			return
		}
	}
	delete(p.active, t)
}

// Aborted implements sched.Control.
func (p *Preventer) Aborted(victims []model.TxnID) {
	p.stats.Aborts += len(victims)
	drop := make(map[model.TxnID]bool, len(victims))
	for _, t := range victims {
		drop[t] = true
		delete(p.active, t)
		delete(p.finished, t)
		delete(p.retired, t)
		delete(p.waitFor, t)
	}
	for _, m := range p.waitFor {
		for t := range drop {
			delete(m, t)
		}
	}
	kept := p.pending[:0]
	for _, a := range p.pending {
		if !drop[a.txn] {
			kept = append(kept, a)
		}
	}
	p.pending = kept
	p.oc.Rebuild(drop)
}

// Stats implements sched.Control.
func (p *Preventer) Stats() *sched.Stats { return &p.stats }

// cycleThrough is a DFS over the waits-for edges (deterministic order).
func (p *Preventer) cycleThrough(t model.TxnID) []model.TxnID {
	var path []model.TxnID
	onPath := map[model.TxnID]bool{}
	visited := map[model.TxnID]bool{}
	var dfs func(u model.TxnID) []model.TxnID
	dfs = func(u model.TxnID) []model.TxnID {
		if onPath[u] {
			for i, w := range path {
				if w == u {
					return append([]model.TxnID(nil), path[i:]...)
				}
			}
			return path
		}
		if visited[u] {
			return nil
		}
		visited[u] = true
		onPath[u] = true
		path = append(path, u)
		next := make([]model.TxnID, 0, len(p.waitFor[u]))
		for v := range p.waitFor[u] {
			next = append(next, v)
		}
		sortIDs(next)
		for _, v := range next {
			if c := dfs(v); c != nil {
				return c
			}
		}
		onPath[u] = false
		path = path[:len(path)-1]
		return nil
	}
	return dfs(t)
}

func sortIDs(ids []model.TxnID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}
