package dist

import (
	"fmt"
	"os"
	"testing"

	"mla/internal/bank"
	"mla/internal/breakpoint"
	"mla/internal/coherent"
	"mla/internal/fault"
	"mla/internal/model"
	"mla/internal/nest"
	mnet "mla/internal/net"
	"mla/internal/sched"
	"mla/internal/sim"
)

// twoProcsXY owns x at processor 0 and everything else at processor 1.
func twoProcsXY(e model.EntityID) int {
	if e == "x" {
		return 0
	}
	return 1
}

// TestFinishRetransmitDropped is the regression for the old control's
// "finish announcements are never dropped" hack: here the first finish
// transmission IS dropped, a remote waiter blocks on the apparently
// unfinished transaction, and the retransmission daemon must recover —
// the waiter grants once the resent finish is acknowledged.
func TestFinishRetransmitDropped(t *testing.T) {
	n := nest.New(2)
	n.Add("t1")
	n.Add("t2") // level(t1,t2)=1: t2 needs t1 finished
	spec := breakpoint.Uniform{Levels: 2, C: 2}
	dropNext := true
	c := NewNet(n, spec, Params{
		Procs: 2, Owner: twoProcsXY, Delay: 5,
		NetPolicy: func(m mnet.Message) (bool, int64) {
			if m.Kind == mnet.Finish && dropNext {
				dropNext = false
				return true, 0
			}
			return false, 0
		},
	})
	c.Tick(0)
	c.Begin("t1", 1)
	c.Begin("t2", 2)
	if d := c.Request("t1", 1, "x"); d.Kind != sched.Grant {
		t.Fatal("t1 x")
	}
	c.Performed("t1", 1, "x", 2)
	if d := c.Request("t1", 2, "y"); d.Kind != sched.Grant {
		t.Fatal("t1 y")
	}
	c.Performed("t1", 2, "y", 0)
	c.Finished("t1") // origin = proc 1; the finish to proc 0 is dropped
	if dropNext {
		t.Fatal("the policy never saw a finish transmission")
	}
	if c.retiredAll["t1"] {
		t.Fatal("retired although the only finish transmission was dropped")
	}
	// Processor 0 never heard the finish: the waiter must block.
	if d := c.Request("t2", 1, "x"); d.Kind != sched.Wait {
		t.Fatalf("t2 on x: got %v, want Wait (finish lost)", d.Kind)
	}
	// Drive the clock: the daemon retransmits, the peer acks, t1 retires.
	for now := int64(1); now <= 200 && !c.retiredAll["t1"]; now++ {
		c.Tick(now)
	}
	if !c.retiredAll["t1"] {
		t.Fatal("retransmission never recovered the dropped finish")
	}
	if c.Retransmits == 0 {
		t.Error("recovery happened without a counted retransmission")
	}
	if d := c.Request("t2", 1, "x"); d.Kind != sched.Grant {
		t.Fatalf("t2 on x after recovery: %v", d.Kind)
	}
	if len(c.TakeVictims()) != 0 {
		t.Error("nothing should have been aborted")
	}
}

// TestPartitionStrandsThenGraceAborts: a never-healing partition separates
// a waiter from the processor its blocker is sited at. The failure
// detector suspects the unreachable side, and after the grace period the
// waiter is aborted rather than left hanging forever.
func TestPartitionStrandsThenGraceAborts(t *testing.T) {
	n := nest.New(2)
	n.Add("t1")
	n.Add("t2")
	spec := breakpoint.Uniform{Levels: 2, C: 2}
	inj := fault.New(fault.Plan{
		Partitions: []fault.Partition{{Name: "split", At: 10, Sides: [][]int{{0}, {1}}}},
	})
	c := NewNet(n, spec, Params{Procs: 2, Owner: twoProcsXY, Delay: 5, Faults: inj})
	c.Tick(0)
	c.Begin("t1", 1)
	c.Begin("t2", 2)
	if d := c.Request("t1", 1, "x"); d.Kind != sched.Grant {
		t.Fatal("t1 x")
	}
	c.Performed("t1", 1, "x", 2)
	if d := c.Request("t1", 2, "y"); d.Kind != sched.Grant {
		t.Fatal("t1 y")
	}
	c.Performed("t1", 2, "y", 2) // t1 now sited at processor 1
	c.Tick(10)                   // partition applies: {0} | {1}
	// t2 blocks at processor 0 on t1, which sits across the partition.
	if d := c.Request("t2", 1, "x"); d.Kind != sched.Wait {
		t.Fatalf("t2 on x: %v", d.Kind)
	}
	var victims []model.TxnID
	for now := int64(11); now <= 2000 && len(victims) == 0; now += 5 {
		c.Tick(now)
		victims = append(victims, c.TakeVictims()...)
	}
	if len(victims) != 1 || victims[0] != "t2" {
		t.Fatalf("victims = %v, want [t2] (the stranded waiter)", victims)
	}
	if c.GraceAborts == 0 {
		t.Error("grace abort not counted")
	}
	if !c.reps[0].suspected[1] {
		t.Error("processor 0 never suspected its partitioned peer")
	}
	c.Aborted(victims)
}

// TestCrashedOwnerStrandsRequests: a request addressed to a crashed
// processor cannot even be decided there. It waits; if the processor
// rejoins within the grace period the re-offered request is decided
// normally, and the stranding leaves no residue.
func TestCrashedOwnerStrandsRequests(t *testing.T) {
	n := nest.New(2)
	n.Add("t1")
	spec := breakpoint.Uniform{Levels: 2, C: 2}
	inj := fault.New(fault.Plan{
		ProcCrashes: []fault.ProcCrash{{Proc: 0, At: 10, Rejoin: 60}},
	})
	c := NewNet(n, spec, Params{Procs: 2, Owner: twoProcsXY, Delay: 5, Faults: inj})
	c.Tick(0)
	c.Begin("t1", 1)
	c.Tick(10) // processor 0 crashes
	if d := c.Request("t1", 1, "x"); d.Kind != sched.Wait {
		t.Fatalf("request to a crashed processor: %v, want Wait", d.Kind)
	}
	if c.stranded["t1"] == nil {
		t.Fatal("request not recorded as stranded")
	}
	c.Tick(60) // rejoin
	c.Tick(61)
	if d := c.Request("t1", 1, "x"); d.Kind != sched.Grant {
		t.Fatalf("re-offered request after rejoin: %v", d.Kind)
	}
	if c.stranded["t1"] != nil {
		t.Fatal("stranding record leaked past the rejoin")
	}
	if len(c.TakeVictims()) != 0 {
		t.Error("nothing should have been aborted within the grace period")
	}
}

// TestCrashAbortsResidentsAndResync: a processor crash loses its soft
// state and kills the unfinished transactions resident on it; on rejoin
// the replica's view table is empty and is rebuilt by anti-entropy resync
// from its peers.
func TestCrashAbortsResidentsAndResync(t *testing.T) {
	n := nest.New(2)
	n.Add("t0")
	n.Add("t1")
	n.Add("t2")
	spec := breakpoint.Uniform{Levels: 2, C: 2}
	inj := fault.New(fault.Plan{
		ProcCrashes: []fault.ProcCrash{{Proc: 1, At: 50, Rejoin: 100}},
	})
	c := NewNet(n, spec, Params{Procs: 2, Owner: twoProcsXY, Delay: 5, Faults: inj})
	c.Tick(0)
	c.Begin("t0", 1)
	c.Begin("t1", 2)
	// t0 steps on x at processor 0; its boundary reaches processor 1.
	if d := c.Request("t0", 1, "x"); d.Kind != sched.Grant {
		t.Fatal("t0 x")
	}
	c.Performed("t0", 1, "x", 2)
	// t1 is resident at processor 1.
	if d := c.Request("t1", 1, "y"); d.Kind != sched.Grant {
		t.Fatal("t1 y")
	}
	c.Performed("t1", 1, "y", 2)
	c.Tick(10)
	if v := c.reps[1].view["t0"]; v == nil || v.bound[2] != 1 {
		t.Fatal("t0's boundary never reached processor 1")
	}
	c.Tick(50) // crash: processor 1 loses everything
	victims := c.TakeVictims()
	if len(victims) != 1 || victims[0] != "t1" {
		t.Fatalf("victims = %v, want [t1] (resident on the crashed processor)", victims)
	}
	if c.CrashAborts == 0 {
		t.Error("crash abort not counted")
	}
	c.Aborted(victims)
	if c.reps[1].view["t0"] != nil {
		t.Fatal("crash must wipe the replica's soft state")
	}
	// Rejoin at 100: SyncRequest goes out, peers answer with snapshots.
	for now := int64(51); now <= 130; now++ {
		c.Tick(now)
	}
	if !c.reps[1].up {
		t.Fatal("processor 1 never rejoined")
	}
	if v := c.reps[1].view["t0"]; v == nil || v.bound[2] != 1 {
		t.Fatal("anti-entropy resync did not rebuild the view of t0")
	}
	// The rebuilt knowledge decides: t2 at processor 1 sees t0's boundary.
	c.Begin("t2", 3)
	if d := c.Request("t2", 1, "y"); d.Kind != sched.Grant {
		t.Fatalf("t2 on y after resync: %v", d.Kind)
	}
}

// chaosScenario is one cell of the E18-style failure grid.
type chaosScenario struct {
	name string
	plan fault.Plan
}

func chaosScenarios(deep bool) []chaosScenario {
	scenarios := []chaosScenario{
		{"loss", fault.Plan{Seed: 11, NetDropRate: 0.2, NetDelayRate: 0.2, NetExtraDelay: 30}},
		{"partition", fault.Plan{
			Partitions: []fault.Partition{{At: 100, Heal: 500}},
		}},
		{"crash", fault.Plan{
			ProcCrashes: []fault.ProcCrash{{Proc: 1, At: 120, Rejoin: 520}},
		}},
		{"everything", fault.Plan{
			Seed:        13,
			NetDropRate: 0.15,
			Partitions:  []fault.Partition{{At: 200, Heal: 600}},
			ProcCrashes: []fault.ProcCrash{{Proc: 2, At: 150, Rejoin: 550}},
		}},
	}
	if deep {
		for _, rate := range []float64{0.1, 0.3, 0.5} {
			for seed := int64(1); seed <= 4; seed++ {
				scenarios = append(scenarios, chaosScenario{
					fmt.Sprintf("deep-loss-%.1f-%d", rate, seed),
					fault.Plan{Seed: seed, NetDropRate: rate, NetDelayRate: rate, NetExtraDelay: 60},
				})
			}
		}
		for _, dur := range []int64{200, 600, 1200} {
			scenarios = append(scenarios, chaosScenario{
				fmt.Sprintf("deep-partition-%d", dur),
				fault.Plan{
					Seed:        17,
					NetDropRate: 0.1,
					Partitions:  []fault.Partition{{At: 100, Heal: 100 + dur}},
				},
			})
		}
		scenarios = append(scenarios, chaosScenario{
			"deep-double-crash",
			fault.Plan{
				Seed: 19,
				ProcCrashes: []fault.ProcCrash{
					{Proc: 1, At: 100, Rejoin: 600},
					{Proc: 3, At: 300, Rejoin: 800},
				},
			},
		})
	}
	return scenarios
}

// TestChaosSweepSoundness runs the full simulator workload under every
// chaos schedule and demands the acceptance bar of the failure-tolerance
// work: the run completes (no hang — stranded transactions abort within
// the grace period and are retried), every transaction eventually commits,
// the banking invariants hold, and the admitted execution is
// Theorem-2-correctable. MLA_CHAOS_DEEP=1 (the nightly CI job) expands the
// grid with heavier loss, longer partitions, and multiple crashes.
func TestChaosSweepSoundness(t *testing.T) {
	deep := os.Getenv("MLA_CHAOS_DEEP") != ""
	for _, sc := range chaosScenarios(deep) {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			p := bank.DefaultParams()
			p.Transfers = 14
			p.BankAudits = 1
			p.CreditorAudits = 2
			p.Seed = 5
			wl := bank.Generate(p)
			cfg := sim.DefaultConfig()
			c := NewNet(wl.Nest, wl.Spec, Params{
				Procs:  cfg.Processors,
				Owner:  sim.OwnerFunc(cfg.Processors),
				Delay:  5,
				Faults: fault.New(sc.plan),
			})
			res, err := sim.Run(cfg, wl.Programs, c, wl.Spec, wl.Init)
			if err != nil {
				t.Fatalf("run did not drain: %v", err)
			}
			if res.Stats.Committed != len(wl.Programs) {
				t.Fatalf("committed %d of %d transactions", res.Stats.Committed, len(wl.Programs))
			}
			inv := wl.Check(res.Exec, res.Final)
			if !inv.ConservationOK {
				t.Error("money not conserved under chaos")
			}
			if inv.AuditsInexact > 0 {
				t.Error("inexact audits under chaos")
			}
			if inv.TraceValid != nil {
				t.Errorf("trace invalid: %v", inv.TraceValid)
			}
			ok, err := coherent.Correctable(res.Exec, wl.Nest, wl.Spec)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Error("non-correctable execution admitted under chaos")
			}
			// Commits are final: every committed transaction's steps survive
			// in the trace exactly once (wl.Check validated the replay), and
			// the control never re-decided a finished transaction.
			if got := len(res.Exec.Txns()); got != len(wl.Programs) {
				t.Errorf("execution carries %d transactions, want %d", got, len(wl.Programs))
			}
		})
	}
}
