package dist

import (
	"testing"

	"mla/internal/bank"
	"mla/internal/breakpoint"
	"mla/internal/coherent"
	"mla/internal/model"
	"mla/internal/nest"
	"mla/internal/sched"
	"mla/internal/sim"
)

func runBank(t *testing.T, delay int64, seed int64) (*sim.Result, *bank.Workload) {
	t.Helper()
	p := bank.DefaultParams()
	p.Transfers = 14
	p.BankAudits = 1
	p.CreditorAudits = 2
	p.Seed = seed
	wl := bank.Generate(p)
	cfg := sim.DefaultConfig()
	c := New(wl.Nest, wl.Spec, cfg.Processors, sim.OwnerFunc(cfg.Processors), delay)
	res, err := sim.Run(cfg, wl.Programs, c, wl.Spec, wl.Init)
	if err != nil {
		t.Fatalf("delay=%d: %v", delay, err)
	}
	return res, wl
}

// TestDistributedSoundness: at every announcement delay the distributed
// preventer must admit only Theorem-2-correctable executions and preserve
// the banking invariants — staleness may slow things down but never breaks
// correctness.
func TestDistributedSoundness(t *testing.T) {
	for _, delay := range []int64{0, 5, 25, 100} {
		for seed := int64(1); seed <= 3; seed++ {
			res, wl := runBank(t, delay, seed)
			inv := wl.Check(res.Exec, res.Final)
			if !inv.ConservationOK {
				t.Errorf("delay=%d seed=%d: money not conserved", delay, seed)
			}
			if inv.AuditsInexact > 0 {
				t.Errorf("delay=%d seed=%d: inexact audits", delay, seed)
			}
			if inv.TraceValid != nil {
				t.Errorf("delay=%d seed=%d: %v", delay, seed, inv.TraceValid)
			}
			ok, err := coherent.Correctable(res.Exec, wl.Nest, wl.Spec)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Errorf("delay=%d seed=%d: non-correctable execution admitted", delay, seed)
			}
		}
	}
}

// TestZeroDelayMatchesNoStaleWaits: with instantaneous announcements there
// are, by definition, no staleness-induced waits.
func TestZeroDelayNoStaleWaits(t *testing.T) {
	p := bank.DefaultParams()
	p.Transfers = 10
	wl := bank.Generate(p)
	cfg := sim.DefaultConfig()
	c := New(wl.Nest, wl.Spec, cfg.Processors, sim.OwnerFunc(cfg.Processors), 0)
	if _, err := sim.Run(cfg, wl.Programs, c, wl.Spec, wl.Init); err != nil {
		t.Fatal(err)
	}
	if c.StaleWaits != 0 {
		t.Errorf("zero delay produced %d stale waits", c.StaleWaits)
	}
}

// TestStalenessCostsWaits: larger delays cannot reduce total waits, and on
// a contended workload they should produce some staleness-attributed ones.
func TestStalenessCostsWaits(t *testing.T) {
	p := bank.DefaultParams()
	p.Transfers = 16
	p.Families = 2
	wl0 := bank.Generate(p)
	cfg := sim.DefaultConfig()
	c0 := New(wl0.Nest, wl0.Spec, cfg.Processors, sim.OwnerFunc(cfg.Processors), 0)
	if _, err := sim.Run(cfg, wl0.Programs, c0, wl0.Spec, wl0.Init); err != nil {
		t.Fatal(err)
	}
	wl1 := bank.Generate(p)
	c1 := New(wl1.Nest, wl1.Spec, cfg.Processors, sim.OwnerFunc(cfg.Processors), 200)
	if _, err := sim.Run(cfg, wl1.Programs, c1, wl1.Spec, wl1.Init); err != nil {
		t.Fatal(err)
	}
	if c1.StaleWaits == 0 {
		t.Log("note: no stale waits at delay=200 (workload may be too gentle)")
	}
	if c1.Stats().Waits < c0.Stats().Waits {
		t.Errorf("stale views waited less (%d) than fresh views (%d)",
			c1.Stats().Waits, c0.Stats().Waits)
	}
}

// TestStaleViewDelaysGrant drives the control directly: a boundary that
// would admit a peer is invisible at a remote processor until the
// announcement matures, and visible immediately at the owner.
func TestStaleViewDelaysGrant(t *testing.T) {
	n := nest.New(3)
	n.Add("t1", "g")
	n.Add("t2", "g") // level(t1,t2) = 2
	spec := breakpoint.Uniform{Levels: 3, C: 2}
	// Two "processors": x is owned by 0, y by 1.
	owner := func(e model.EntityID) int {
		if e == "x" {
			return 0
		}
		return 1
	}
	c := New(n, spec, 2, owner, 50)
	c.Tick(0)
	c.Begin("t1", 1)
	c.Begin("t2", 2)
	if d := c.Request("t1", 1, "x"); d.Kind != sched.Grant {
		t.Fatal("fresh entity must grant")
	}
	// A level-2 boundary after the step: the owner of x sees it at once.
	c.Performed("t1", 1, "x", 2)
	if d := c.Request("t2", 1, "x"); d.Kind != sched.Grant {
		t.Fatal("owner processor sees the boundary immediately")
	}
	c.Performed("t2", 1, "x", 2)
	// t1 now works on y (processor 1); its boundary announcement for the
	// x-step already matured... drive a second boundary: t1 steps on y with
	// a level-2 cut, then t2 asks for y — processor 1 saw it at once.
	if d := c.Request("t1", 2, "y"); d.Kind != sched.Grant {
		t.Fatal("t1 on y should grant (t2's x-boundary is level-2, owner is 0; y's owner view matures later)")
	}
	c.Performed("t1", 2, "y", 2)
	if d := c.Request("t2", 2, "y"); d.Kind != sched.Grant {
		t.Fatal("y's owner sees t1's boundary immediately")
	}
	c.Performed("t2", 2, "y", 2)
	// Now make t2 touch x again: x's owner (0) must wait for the
	// announcement of t1's y-boundary... t1's last access to x was seq 1
	// with a boundary already known at 0, so this grants; instead check the
	// staleness path explicitly via view tables.
	d1 := c.active["t1"]
	if d1.view[0][2] >= 2 && c.Delay > 0 {
		t.Fatal("processor 0 should not yet know t1's seq-2 boundary")
	}
	c.Tick(100) // mature announcements
	if d1.view[0][2] < 2 {
		t.Fatal("announcement did not mature")
	}
}

func TestNewValidation(t *testing.T) {
	wl := bank.Generate(bank.DefaultParams())
	defer func() {
		if recover() == nil {
			t.Error("procs < 1 must panic")
		}
	}()
	New(wl.Nest, wl.Spec, 0, sim.OwnerFunc(1), 0)
}

// TestRetiredFreesViewTablesAfterDelay pins the Retired memory-leak fix:
// with Delay > 0 a committed transaction's per-processor view tables must
// be freed once the matured finish announcement has reached every
// processor — and not a tick earlier, since a stale view may only
// under-report progress, never over-report it.
func TestRetiredFreesViewTablesAfterDelay(t *testing.T) {
	n := nest.New(3)
	n.Add("t1", "g")
	n.Add("t2", "g")
	spec := breakpoint.Uniform{Levels: 3, C: 2}
	c := New(n, spec, 2, func(model.EntityID) int { return 0 }, 50)
	c.Tick(0)
	c.Begin("t1", 1)
	if d := c.Request("t1", 1, "x"); d.Kind != sched.Grant {
		t.Fatal("fresh entity must grant")
	}
	c.Performed("t1", 1, "x", 2)
	c.Finished("t1")
	c.Retired("t1")
	// The finish announcement is still in flight: the tables must survive.
	if c.active["t1"] == nil {
		t.Fatal("view tables freed before the finish announcement matured")
	}
	c.Tick(10) // not yet matured
	if c.active["t1"] == nil {
		t.Fatal("view tables freed while the announcement was still in flight")
	}
	c.Tick(60) // matured at every processor
	if c.active["t1"] != nil {
		t.Fatal("view tables leaked after the finish announcement matured everywhere")
	}
	// A later transaction still sees t1 as closed (finished ⇒ closed).
	c.Begin("t2", 2)
	if d := c.Request("t2", 1, "x"); d.Kind != sched.Grant {
		t.Fatal("committed transactions must impose no constraints")
	}

	// Zero delay frees immediately on Retired.
	c0 := New(n, spec, 2, func(model.EntityID) int { return 0 }, 0)
	c0.Begin("t1", 1)
	c0.Request("t1", 1, "x")
	c0.Performed("t1", 1, "x", 2)
	c0.Finished("t1")
	c0.Retired("t1")
	if c0.active["t1"] != nil {
		t.Fatal("zero-delay Retired must free the view tables at once")
	}
}
