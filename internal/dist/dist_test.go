package dist

import (
	"testing"

	"mla/internal/bank"
	"mla/internal/breakpoint"
	"mla/internal/coherent"
	"mla/internal/model"
	"mla/internal/nest"
	"mla/internal/sched"
	"mla/internal/sim"
)

func runBank(t *testing.T, delay int64, seed int64) (*sim.Result, *bank.Workload) {
	t.Helper()
	p := bank.DefaultParams()
	p.Transfers = 14
	p.BankAudits = 1
	p.CreditorAudits = 2
	p.Seed = seed
	wl := bank.Generate(p)
	cfg := sim.DefaultConfig()
	c := New(wl.Nest, wl.Spec, cfg.Processors, sim.OwnerFunc(cfg.Processors), delay)
	res, err := sim.Run(cfg, wl.Programs, c, wl.Spec, wl.Init)
	if err != nil {
		t.Fatalf("delay=%d: %v", delay, err)
	}
	return res, wl
}

// TestDistributedSoundness: at every announcement delay the distributed
// preventer must admit only Theorem-2-correctable executions and preserve
// the banking invariants — staleness may slow things down but never breaks
// correctness.
func TestDistributedSoundness(t *testing.T) {
	for _, delay := range []int64{0, 5, 25, 100} {
		for seed := int64(1); seed <= 3; seed++ {
			res, wl := runBank(t, delay, seed)
			inv := wl.Check(res.Exec, res.Final)
			if !inv.ConservationOK {
				t.Errorf("delay=%d seed=%d: money not conserved", delay, seed)
			}
			if inv.AuditsInexact > 0 {
				t.Errorf("delay=%d seed=%d: inexact audits", delay, seed)
			}
			if inv.TraceValid != nil {
				t.Errorf("delay=%d seed=%d: %v", delay, seed, inv.TraceValid)
			}
			ok, err := coherent.Correctable(res.Exec, wl.Nest, wl.Spec)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Errorf("delay=%d seed=%d: non-correctable execution admitted", delay, seed)
			}
		}
	}
}

// TestZeroDelayMatchesNoStaleWaits: with instantaneous announcements there
// are, by definition, no staleness-induced waits.
func TestZeroDelayNoStaleWaits(t *testing.T) {
	p := bank.DefaultParams()
	p.Transfers = 10
	wl := bank.Generate(p)
	cfg := sim.DefaultConfig()
	c := New(wl.Nest, wl.Spec, cfg.Processors, sim.OwnerFunc(cfg.Processors), 0)
	if _, err := sim.Run(cfg, wl.Programs, c, wl.Spec, wl.Init); err != nil {
		t.Fatal(err)
	}
	if c.StaleWaits != 0 {
		t.Errorf("zero delay produced %d stale waits", c.StaleWaits)
	}
}

// TestStalenessCostsWaits: larger delays cannot reduce total waits, and on
// a contended workload they should produce some staleness-attributed ones.
func TestStalenessCostsWaits(t *testing.T) {
	p := bank.DefaultParams()
	p.Transfers = 16
	p.Families = 2
	wl0 := bank.Generate(p)
	cfg := sim.DefaultConfig()
	c0 := New(wl0.Nest, wl0.Spec, cfg.Processors, sim.OwnerFunc(cfg.Processors), 0)
	if _, err := sim.Run(cfg, wl0.Programs, c0, wl0.Spec, wl0.Init); err != nil {
		t.Fatal(err)
	}
	wl1 := bank.Generate(p)
	c1 := New(wl1.Nest, wl1.Spec, cfg.Processors, sim.OwnerFunc(cfg.Processors), 200)
	if _, err := sim.Run(cfg, wl1.Programs, c1, wl1.Spec, wl1.Init); err != nil {
		t.Fatal(err)
	}
	if c1.StaleWaits == 0 {
		t.Log("note: no stale waits at delay=200 (workload may be too gentle)")
	}
	if c1.Stats().Waits < c0.Stats().Waits {
		t.Errorf("stale views waited less (%d) than fresh views (%d)",
			c1.Stats().Waits, c0.Stats().Waits)
	}
}

// TestStaleViewDelaysGrant drives the control directly: a boundary that
// would admit a peer is visible immediately at the entity's owner replica
// and invisible at a remote replica until the announcement matures on the
// bus — and the resulting wait is attributed to staleness.
func TestStaleViewDelaysGrant(t *testing.T) {
	n := nest.New(3)
	n.Add("t1", "g")
	n.Add("t2", "g") // level(t1,t2) = 2
	spec := breakpoint.Uniform{Levels: 3, C: 2}
	// Two processors: x lives at 0, y at 1.
	owner := func(e model.EntityID) int {
		if e == "x" {
			return 0
		}
		return 1
	}
	c := New(n, spec, 2, owner, 50)
	c.Tick(0)
	c.Begin("t1", 1)
	c.Begin("t2", 2)
	if d := c.Request("t1", 1, "x"); d.Kind != sched.Grant {
		t.Fatal("fresh entity must grant")
	}
	// A level-2 boundary after the step: the owner replica sees it at once,
	// the remote replica only when the broadcast matures.
	c.Performed("t1", 1, "x", 2)
	if v := c.reps[0].view["t1"]; v == nil || v.bound[2] != 1 {
		t.Fatal("owner replica must learn its own boundary immediately")
	}
	if v := c.reps[1].view["t1"]; v != nil && v.bound[2] != 0 {
		t.Fatal("remote replica saw the boundary before the announcement matured")
	}
	if d := c.Request("t2", 1, "x"); d.Kind != sched.Grant {
		t.Fatal("owner processor sees the boundary immediately")
	}
	c.Performed("t2", 1, "x", 2)
	// t2 moves on to y at processor 1, whose replica has not yet heard
	// t1's boundary: the request waits, and only because of staleness.
	if d := c.Request("t2", 2, "y"); d.Kind != sched.Wait {
		t.Fatalf("remote processor should wait on the unmatured announcement, got %v", d.Kind)
	}
	if c.StaleWaits == 0 {
		t.Error("the wait was caused purely by staleness and must be attributed")
	}
	c.Tick(50) // announcements mature
	if v := c.reps[1].view["t1"]; v == nil || v.bound[2] != 1 {
		t.Fatal("announcement did not mature")
	}
	if d := c.Request("t2", 2, "y"); d.Kind != sched.Grant {
		t.Fatal("matured boundary must admit the remote request")
	}
}

func TestNewValidation(t *testing.T) {
	wl := bank.Generate(bank.DefaultParams())
	defer func() {
		if recover() == nil {
			t.Error("procs < 1 must panic")
		}
	}()
	New(wl.Nest, wl.Spec, 0, sim.OwnerFunc(1), 0)
}

// TestFinishAckRetiresViewTables pins the soft-state reclamation protocol:
// a finished transaction's replica views are pruned only once every peer
// has acknowledged the finish — the round-trip of the finish message and
// its ack at the configured latency — and not a tick earlier, since until
// the ack the origin cannot know the peer learned the finish.
func TestFinishAckRetiresViewTables(t *testing.T) {
	n := nest.New(3)
	n.Add("t1", "g")
	n.Add("t2", "g")
	spec := breakpoint.Uniform{Levels: 3, C: 2}
	c := New(n, spec, 2, func(model.EntityID) int { return 0 }, 50)
	c.Tick(0)
	c.Begin("t1", 1)
	if d := c.Request("t1", 1, "x"); d.Kind != sched.Grant {
		t.Fatal("fresh entity must grant")
	}
	c.Performed("t1", 1, "x", 2)
	c.Finished("t1")
	c.Retired("t1")
	// The finish is still in flight to processor 1: state must survive.
	if c.retiredAll["t1"] {
		t.Fatal("retired before the peer acknowledged the finish")
	}
	if c.reps[0].view["t1"] == nil || !c.reps[0].view["t1"].finished {
		t.Fatal("origin replica must record the finish at once")
	}
	c.Tick(49)
	if c.retiredAll["t1"] {
		t.Fatal("retired while the finish was still in flight")
	}
	c.Tick(50) // finish delivered at peer; ack now in flight back
	if c.retiredAll["t1"] {
		t.Fatal("retired before the ack returned")
	}
	if v := c.reps[1].view["t1"]; v == nil || !v.finished {
		t.Fatal("peer replica must record the delivered finish")
	}
	c.Tick(100) // ack delivered: all peers known reached
	if !c.retiredAll["t1"] {
		t.Fatal("not retired after the full finish/ack round-trip")
	}
	if c.reps[0].view["t1"] != nil || c.reps[1].view["t1"] != nil {
		t.Fatal("view tables leaked after retirement")
	}
	if c.pendingFinish["t1"] != nil {
		t.Fatal("retransmission record leaked after retirement")
	}
	// A later transaction still sees t1 as closed (retired ⇒ closed).
	c.Begin("t2", 2)
	if d := c.Request("t2", 1, "x"); d.Kind != sched.Grant {
		t.Fatal("retired transactions must impose no constraints")
	}

	// Zero latency: the finish/ack round-trip completes inline, so the
	// transaction retires during Finished itself.
	c0 := New(n, spec, 2, func(model.EntityID) int { return 0 }, 0)
	c0.Begin("t1", 1)
	c0.Request("t1", 1, "x")
	c0.Performed("t1", 1, "x", 2)
	c0.Finished("t1")
	if !c0.retiredAll["t1"] || c0.reps[0].view["t1"] != nil {
		t.Fatal("zero-latency finish must retire inline")
	}
}
