// Package trace serializes executions and multilevel-atomicity
// specifications to JSON, so recorded histories can be checked offline by
// cmd/mlacheck and exchanged between tools.
//
// A specification is serialized structurally: the nest as per-transaction
// label paths and the breakpoints as explicit per-transaction coarseness
// arrays (a materialized breakpoint description for the recorded
// execution). Function-valued specs are therefore captured extensionally —
// exactly what an offline checker needs.
package trace

import (
	"encoding/json"
	"fmt"
	"io"

	"mla/internal/breakpoint"
	"mla/internal/coherent"
	"mla/internal/model"
	"mla/internal/nest"
)

// File is the on-disk format.
type File struct {
	K     int                            `json:"k"`
	Init  map[model.EntityID]model.Value `json:"init,omitempty"`
	Nest  map[model.TxnID][]string       `json:"nest"` // intermediate labels (levels 2..k-1)
	Cuts  map[model.TxnID][]int          `json:"cuts"` // coarseness per interior boundary
	Steps []StepJSON                     `json:"steps"`
}

// StepJSON mirrors model.Step with stable field names.
type StepJSON struct {
	Txn    model.TxnID    `json:"txn"`
	Seq    int            `json:"seq"`
	Entity model.EntityID `json:"entity"`
	Label  string         `json:"label,omitempty"`
	Before model.Value    `json:"before"`
	After  model.Value    `json:"after"`
}

// Encode captures an execution together with its specification.
func Encode(w io.Writer, e model.Execution, n *nest.Nest, spec breakpoint.Spec, init map[model.EntityID]model.Value) error {
	if n.K() != spec.K() {
		return fmt.Errorf("trace: nest k=%d but spec k=%d", n.K(), spec.K())
	}
	f := File{
		K:    n.K(),
		Init: init,
		Nest: make(map[model.TxnID][]string),
		Cuts: make(map[model.TxnID][]int),
	}
	perTxn := make(map[model.TxnID][]model.Step)
	for _, s := range e {
		f.Steps = append(f.Steps, StepJSON(s))
		perTxn[s.Txn] = append(perTxn[s.Txn], s)
	}
	txns := make([]model.TxnID, 0, len(perTxn))
	for t := range perTxn {
		txns = append(txns, t)
	}
	model.SortTxnIDs(txns)
	for _, t := range txns {
		if !n.Has(t) {
			return fmt.Errorf("trace: transaction %s missing from nest", t)
		}
		f.Nest[t] = nestPath(n, t)
		d := breakpoint.Describe(spec, t, perTxn[t])
		cuts := make([]int, 0, d.Len())
		for p := 1; p < d.Len(); p++ {
			cuts = append(cuts, d.Coarseness(p))
		}
		f.Cuts[t] = cuts
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}

// nestPath recovers a transaction's intermediate labels by probing class
// membership level by level against all transactions — the nest API does
// not expose raw paths, so we synthesize stable labels from class indices.
func nestPath(n *nest.Nest, t model.TxnID) []string {
	var path []string
	for lv := 2; lv < n.K(); lv++ {
		classes := n.Classes(lv)
		for ci, class := range classes {
			for _, u := range class {
				if u == t {
					path = append(path, fmt.Sprintf("L%d-C%d", lv, ci))
				}
			}
		}
	}
	return path
}

// Decoded bundles everything reconstructed from a trace file.
type Decoded struct {
	Exec model.Execution
	Nest *nest.Nest
	Spec breakpoint.Spec
	Init map[model.EntityID]model.Value
}

// Decode parses a trace file and reconstructs the execution and
// specification.
func Decode(r io.Reader) (*Decoded, error) {
	var f File
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	if f.K < 2 {
		return nil, fmt.Errorf("trace: k=%d out of range", f.K)
	}
	d := &Decoded{Init: f.Init}
	for i, s := range f.Steps {
		// A step naming a transaction absent from the nest, or an
		// out-of-range seq, would panic deep inside the checker; reject the
		// file with a diagnostic instead.
		if _, ok := f.Nest[s.Txn]; !ok {
			return nil, fmt.Errorf("trace: step %d: transaction %s missing from nest", i, s.Txn)
		}
		if s.Seq < 1 {
			return nil, fmt.Errorf("trace: step %d: seq %d out of range", i, s.Seq)
		}
		d.Exec = append(d.Exec, model.Step(s))
	}
	for t, cs := range f.Cuts {
		for i, c := range cs {
			if c < 2 || c > f.K {
				return nil, fmt.Errorf("trace: %s cut %d has coarseness %d outside [2,%d]", t, i, c, f.K)
			}
		}
	}
	n := nest.New(f.K)
	txns := make([]model.TxnID, 0, len(f.Nest))
	for t := range f.Nest {
		txns = append(txns, t)
	}
	model.SortTxnIDs(txns)
	for _, t := range txns {
		path := f.Nest[t]
		if len(path) != f.K-2 {
			return nil, fmt.Errorf("trace: %s has %d labels, want %d", t, len(path), f.K-2)
		}
		n.Add(t, path...)
	}
	d.Nest = n

	// The spec replays the recorded coarseness arrays by prefix length.
	cuts := f.Cuts
	d.Spec = breakpoint.Func{Levels: f.K, Fn: func(t model.TxnID, prefix []model.Step) int {
		cs, ok := cuts[t]
		if !ok || len(prefix)-1 >= len(cs) {
			return f.K
		}
		return cs[len(prefix)-1]
	}}
	return d, nil
}

// Check decodes and runs the Theorem 2 analysis in one call.
func Check(r io.Reader) (*coherent.Result, *Decoded, error) {
	d, err := Decode(r)
	if err != nil {
		return nil, nil, err
	}
	res, err := coherent.CheckExecution(d.Exec, d.Nest, d.Spec)
	if err != nil {
		return nil, d, err
	}
	return res, d, nil
}
