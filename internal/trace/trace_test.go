package trace

import (
	"bytes"
	"strings"
	"testing"

	"mla/internal/bank"
	"mla/internal/coherent"
	"mla/internal/model"
)

// sampleExecution builds a serial banking run plus its specification.
func sampleExecution(t *testing.T) (*bank.Workload, model.Execution) {
	t.Helper()
	p := bank.DefaultParams()
	p.Transfers = 4
	p.BankAudits = 1
	p.CreditorAudits = 1
	wl := bank.Generate(p)
	vals := make(map[model.EntityID]model.Value, len(wl.Init))
	for k, v := range wl.Init {
		vals[k] = v
	}
	e, err := model.RunSerial(wl.Programs, vals)
	if err != nil {
		t.Fatal(err)
	}
	return wl, e
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	wl, e := sampleExecution(t)
	var buf bytes.Buffer
	if err := Encode(&buf, e, wl.Nest, wl.Spec, wl.Init); err != nil {
		t.Fatal(err)
	}
	d, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Exec) != len(e) {
		t.Fatalf("steps: %d vs %d", len(d.Exec), len(e))
	}
	for i := range e {
		if d.Exec[i] != e[i] {
			t.Fatalf("step %d: %v vs %v", i, d.Exec[i], e[i])
		}
	}
	if d.Nest.K() != wl.Nest.K() {
		t.Errorf("k = %d", d.Nest.K())
	}
	// Levels must be preserved for every pair.
	txns := e.Txns()
	for _, a := range txns {
		for _, b := range txns {
			if d.Nest.Level(a, b) != wl.Nest.Level(a, b) {
				t.Errorf("level(%s,%s): %d vs %d", a, b, d.Nest.Level(a, b), wl.Nest.Level(a, b))
			}
		}
	}
	// The Theorem 2 verdict must agree before and after the round trip.
	orig, err := coherent.CheckExecution(e, wl.Nest, wl.Spec)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := coherent.CheckExecution(d.Exec, d.Nest, d.Spec)
	if err != nil {
		t.Fatal(err)
	}
	if orig.Atomic != rt.Atomic || orig.Correctable != rt.Correctable {
		t.Errorf("verdicts differ: %v/%v vs %v/%v", orig.Atomic, orig.Correctable, rt.Atomic, rt.Correctable)
	}
}

func TestCheckHelper(t *testing.T) {
	wl, e := sampleExecution(t)
	var buf bytes.Buffer
	if err := Encode(&buf, e, wl.Nest, wl.Spec, wl.Init); err != nil {
		t.Fatal(err)
	}
	res, d, err := Check(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Correctable || !res.Atomic {
		t.Error("serial run must be atomic and correctable")
	}
	if err := d.Exec.Validate(d.Init); err != nil {
		t.Errorf("decoded init/exec inconsistent: %v", err)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(strings.NewReader("{not json")); err == nil {
		t.Error("malformed JSON accepted")
	}
	if _, err := Decode(strings.NewReader(`{"k":1}`)); err == nil {
		t.Error("k=1 accepted")
	}
	// Wrong label count for k.
	bad := `{"k":4,"nest":{"t1":["only-one"]},"cuts":{"t1":[]},"steps":[]}`
	if _, err := Decode(strings.NewReader(bad)); err == nil {
		t.Error("label count mismatch accepted")
	}
}

func TestEncodeErrors(t *testing.T) {
	wl, e := sampleExecution(t)
	// Spec/nest k mismatch is caught.
	if err := Encode(&bytes.Buffer{}, e, wl.Nest, badSpec{}, wl.Init); err == nil {
		t.Error("k mismatch accepted")
	}
	// A transaction missing from the nest is caught.
	ghost := append(model.Execution{}, e...)
	ghost = append(ghost, model.Step{Txn: "ghost", Seq: 1, Entity: "x"})
	if err := Encode(&bytes.Buffer{}, ghost, wl.Nest, wl.Spec, wl.Init); err == nil {
		t.Error("ghost transaction accepted")
	}
}

type badSpec struct{}

func (badSpec) K() int                                 { return 99 }
func (badSpec) CutAfter(model.TxnID, []model.Step) int { return 2 }
