package sched

import (
	"fmt"

	"mla/internal/breakpoint"
	"mla/internal/coherent"
	"mla/internal/model"
	"mla/internal/nest"
)

// Preventer implements the cycle-prevention strategy of Section 6 exactly:
// a step β of transaction t′ is delayed until, for every transaction t
// whose steps precede β in the coherent closure of the performed prefix, a
// breakpoint of level level(t,t′) follows t's last such step (or t has
// finished). Under that rule every edge of the coherent closure points
// forward in real time, so the closure is consistent with the performance
// order and therefore a partial order: every execution the Preventer
// admits is correctable (Theorem 2).
//
// The closure predecessors are taken from the same online coherent closure
// the Detector uses (property-tested equal to the batch Theorem 2 checker):
// before granting, the would-be step's predecessor set is previewed without
// mutation (coherent.Online.PredForNewStep) and each predecessor
// transaction's boundary position is checked in O(extent). Earlier versions
// approximated the predecessor set by folding per-entity dependency maps
// forward; that scheme misses predecessors introduced by coherence rule (b)
// — segment-completion pins — and admitted non-correctable executions
// (TestPreventerSoundnessSeed67 pins the counterexamples).
//
// Blocked requests are resolved by a waits-for graph with youngest-victim
// selection, the paper's assumed "priority scheme and rollback mechanism to
// insure that no initiated transaction gets blocked indefinitely".
//
// Setting TrackTransitive to false replaces the closure preview with the
// naive direct-conflict check (per-entity last accessors only). It is
// unsound — E10 demonstrates admitted non-correctable executions — and is
// retained purely as the ablation: it is also exactly the naive
// nested-transaction specialization the paper's Section 7 leaves open.
type Preventer struct {
	nest *nest.Nest
	spec breakpoint.Spec
	k    int

	// TrackTransitive selects the sound closure-based delay rule (true,
	// default) or the naive direct-only ablation (false).
	TrackTransitive bool

	oc       *coherent.Online
	prio     map[model.TxnID]int64
	finished map[model.TxnID]bool

	// Direct-mode (ablation) state.
	direct     map[model.TxnID]*dtxnState
	lastAccess map[model.EntityID]map[model.TxnID]int

	waitFor *waitGraph
	stats   Stats
}

type dtxnState struct {
	bound    []int // bound[lv]: latest boundary position with coarseness <= lv
	finished bool
}

// NewPreventer builds the prevention control for the given nest and
// breakpoint specification (they must share k).
func NewPreventer(n *nest.Nest, spec breakpoint.Spec) *Preventer {
	if n.K() != spec.K() {
		panic("sched: nest and breakpoint spec disagree on k")
	}
	return &Preventer{
		nest:            n,
		spec:            spec,
		k:               n.K(),
		TrackTransitive: true,
		oc:              coherent.NewOnline(n.K(), n.Level),
		prio:            make(map[model.TxnID]int64),
		finished:        make(map[model.TxnID]bool),
		direct:          make(map[model.TxnID]*dtxnState),
		lastAccess:      make(map[model.EntityID]map[model.TxnID]int),
		waitFor:         newWaitGraph(),
	}
}

// Name implements Control.
func (p *Preventer) Name() string {
	if !p.TrackTransitive {
		return "prevent-direct"
	}
	return "prevent"
}

// Begin implements Control.
func (p *Preventer) Begin(t model.TxnID, prio int64) {
	p.prio[t] = prio
	delete(p.finished, t)
	p.direct[t] = &dtxnState{bound: make([]int, p.k+1)}
}

// closed reports whether u's step at seq is closed off for a level-lv
// observer: u finished, or a B(lv) boundary follows the step.
func (p *Preventer) closed(u model.TxnID, seq, lv int) bool {
	if p.finished[u] {
		return true
	}
	if p.TrackTransitive {
		return p.oc.SegmentClosedAfter(u, seq, lv)
	}
	d := p.direct[u]
	if d == nil || d.finished {
		return true
	}
	return d.bound[lv] >= seq
}

// Request implements Control: the Section 6 delay rule over the previewed
// closure predecessors, with waits-for deadlock resolution.
func (p *Preventer) Request(t model.TxnID, _ int, x model.EntityID) Decision {
	p.stats.Requests++
	blockers := make(map[model.TxnID]bool)
	if p.TrackTransitive {
		p.oc.ForEachPredOfNewStep(t, x, func(u model.TxnID, s int) {
			if u != t && !p.closed(u, s, p.nest.Level(u, t)) {
				blockers[u] = true
			}
		})
	} else {
		for u, s := range p.lastAccess[x] {
			if u != t && !p.closed(u, s, p.nest.Level(u, t)) {
				blockers[u] = true
			}
		}
	}
	if len(blockers) == 0 {
		p.waitFor.clear(t)
		p.stats.Grants++
		return grant
	}
	p.waitFor.setWaits(t, blockers)
	if cycle := p.waitFor.cycleThrough(t); len(cycle) > 0 {
		victim := youngest(cycle, func(u model.TxnID) int64 {
			if pr, ok := p.prio[u]; ok {
				return pr
			}
			return -1
		})
		p.waitFor.clear(t)
		if victim != t {
			p.stats.Wounds++
		}
		return Decision{Kind: Abort, Victims: []model.TxnID{victim}}
	}
	p.stats.Waits++
	return wait
}

// Performed implements Control: the granted step enters the closure; its
// breakpoint (if any) closes segments.
func (p *Preventer) Performed(t model.TxnID, seq int, x model.EntityID, cut int) {
	if p.TrackTransitive {
		if !p.oc.AddStep(t, x) {
			// The delay rule makes a cycle at insertion impossible; hitting
			// one means the rule was violated — fail loudly.
			panic(fmt.Sprintf("sched: preventer admitted a cyclic step %s on %s", t, x))
		}
		if cut > 0 {
			p.oc.AddCut(t, cut)
		}
		return
	}
	d := p.direct[t]
	if cut > 0 {
		for lv := cut; lv <= p.k; lv++ {
			d.bound[lv] = seq
		}
	}
	if p.lastAccess[x] == nil {
		p.lastAccess[x] = make(map[model.TxnID]int)
	}
	p.lastAccess[x][t] = seq
}

// Finished implements Control.
func (p *Preventer) Finished(t model.TxnID) {
	p.finished[t] = true
	if d := p.direct[t]; d != nil {
		d.finished = true
	}
	p.waitFor.drop(t)
}

// Retired tells the Preventer that a finished transaction committed. Its
// closure entries are retained deliberately: a committed transaction blocks
// nobody (finished ⇒ closed at every level), but its steps still anchor
// obligations about other, still-open transactions. Memory grows with the
// run — the usual price of exact dependency tracking.
func (p *Preventer) Retired(model.TxnID) {}

// Aborted implements Control: victims' events leave the closure entirely.
func (p *Preventer) Aborted(victims []model.TxnID) {
	p.stats.Aborts += len(victims)
	drop := make(map[model.TxnID]bool, len(victims))
	for _, t := range victims {
		drop[t] = true
		delete(p.finished, t)
		delete(p.direct, t)
		p.waitFor.drop(t)
	}
	if p.TrackTransitive {
		p.oc.Rebuild(drop)
		return
	}
	for x, m := range p.lastAccess {
		for t := range drop {
			delete(m, t)
		}
		if len(m) == 0 {
			delete(p.lastAccess, x)
		}
	}
}

// AbortedTo implements the simulator's partial-recovery hook: t was rolled
// back to seq = keep and resumes; its suffix leaves the closure.
func (p *Preventer) AbortedTo(t model.TxnID, keep int) {
	p.stats.Aborts++
	delete(p.finished, t)
	p.waitFor.drop(t)
	if p.TrackTransitive {
		p.oc.RebuildPartial(map[model.TxnID]int{t: keep})
		return
	}
	if d := p.direct[t]; d != nil {
		for lv := 1; lv <= p.k; lv++ {
			if d.bound[lv] > keep {
				d.bound[lv] = keep
			}
		}
	}
	for x, m := range p.lastAccess {
		if s, ok := m[t]; ok && s > keep {
			if keep == 0 {
				delete(m, t)
			} else {
				m[t] = keep
			}
		}
		if len(m) == 0 {
			delete(p.lastAccess, x)
		}
	}
}

// DeadlineAborted implements the DeadlineAborter capability.
func (p *Preventer) DeadlineAborted(model.TxnID) { p.stats.Deadlines++ }

// Stats implements Control.
func (p *Preventer) Stats() *Stats { return &p.stats }
