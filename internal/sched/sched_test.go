package sched

import (
	"testing"

	"mla/internal/breakpoint"
	"mla/internal/model"
	"mla/internal/nest"
)

func TestNoneGrantsEverything(t *testing.T) {
	c := NewNone()
	c.Begin("t1", 1)
	c.Begin("t2", 2)
	for i := 0; i < 5; i++ {
		if d := c.Request("t1", i+1, "x"); d.Kind != Grant {
			t.Fatalf("None denied a request: %v", d)
		}
		if d := c.Request("t2", i+1, "x"); d.Kind != Grant {
			t.Fatalf("None denied a request: %v", d)
		}
	}
	if c.Stats().Grants != 10 {
		t.Errorf("grants = %d", c.Stats().Grants)
	}
}

func TestSerialOneAtATime(t *testing.T) {
	c := NewSerial()
	c.Begin("t1", 1)
	c.Begin("t2", 2)
	if d := c.Request("t1", 1, "x"); d.Kind != Grant {
		t.Fatal("first requester must get the token")
	}
	if d := c.Request("t2", 1, "y"); d.Kind != Wait {
		t.Fatal("second transaction must wait even on a different entity")
	}
	if d := c.Request("t1", 2, "y"); d.Kind != Grant {
		t.Fatal("holder continues")
	}
	c.Finished("t1")
	if d := c.Request("t2", 1, "y"); d.Kind != Grant {
		t.Fatal("token must pass on finish")
	}
	c.Aborted([]model.TxnID{"t2"})
	c.Begin("t3", 3)
	if d := c.Request("t3", 1, "x"); d.Kind != Grant {
		t.Fatal("token must pass on abort")
	}
}

func TestTwoPhaseLockingAndDeadlock(t *testing.T) {
	c := NewTwoPhase()
	c.Begin("old", 1)
	c.Begin("young", 9)
	if d := c.Request("young", 1, "x"); d.Kind != Grant {
		t.Fatal("free lock")
	}
	// A conflicting request waits — no eager wounding.
	if d := c.Request("old", 1, "x"); d.Kind != Wait {
		t.Fatalf("conflicting request should wait, got %v", d.Kind)
	}
	// young takes y, then old... build the classic deadlock: old holds y?
	// Reset scenario: old acquires y, young requests y → old→x? Create the
	// cycle: young holds x and requests y; old holds y and requests x.
	if d := c.Request("old", 1, "y"); d.Kind != Grant {
		t.Fatal("old should lock y")
	}
	if d := c.Request("young", 2, "y"); d.Kind != Wait {
		t.Fatal("young waits on y")
	}
	// old requesting x closes the cycle: the youngest member dies.
	d := c.Request("old", 2, "x")
	if d.Kind != Abort || len(d.Victims) != 1 || d.Victims[0] != "young" {
		t.Fatalf("decision = %+v", d)
	}
	c.Aborted(d.Victims)
	if d := c.Request("old", 2, "x"); d.Kind != Grant {
		t.Fatal("lock must be free after the victim's rollback")
	}
	c.Finished("old")
	c.Begin("young2", 20)
	if d := c.Request("young2", 1, "x"); d.Kind != Grant {
		t.Fatal("lock must be free after finish")
	}
	if c.Stats().Wounds != 1 {
		t.Errorf("wounds = %d", c.Stats().Wounds)
	}
}

func TestTimestampOrdering(t *testing.T) {
	c := NewTimestamp()
	c.Begin("t1", 5)
	c.Begin("t2", 9)
	if d := c.Request("t2", 1, "x"); d.Kind != Grant {
		t.Fatal("first access grants")
	}
	c.Performed("t2", 1, "x", 0)
	// Older t1 now arrives at x: too late.
	d := c.Request("t1", 1, "x")
	if d.Kind != Abort || d.Victims[0] != "t1" {
		t.Fatalf("decision = %+v", d)
	}
	// Restart with a fresh (larger) timestamp succeeds.
	if got := c.NewPriority("t1", 5, 100); got != 100 {
		t.Errorf("NewPriority = %d", got)
	}
	c.Begin("t1", 100)
	if d := c.Request("t1", 1, "x"); d.Kind != Grant {
		t.Fatal("fresh timestamp must grant")
	}
}

// preventerFixture: k=3 nest with t1,t2 in one class (level 2) and t3 alone
// (level 1 with everyone).
func preventerFixture() (*nest.Nest, breakpoint.Spec) {
	n := nest.New(3)
	n.Add("t1", "g")
	n.Add("t2", "g")
	n.Add("t3", "solo")
	// Breakpoints are reported to the control by the caller in these unit
	// tests; the spec here is only used for k.
	return n, breakpoint.Uniform{Levels: 3, C: 3}
}

func TestPreventerWaitsForBreakpoint(t *testing.T) {
	n, spec := preventerFixture()
	p := NewPreventer(n, spec)
	p.Begin("t1", 1)
	p.Begin("t2", 2)
	if d := p.Request("t1", 1, "x"); d.Kind != Grant {
		t.Fatal("first access grants")
	}
	p.Performed("t1", 1, "x", 3) // level-3 cut: only t1 itself may pass
	if d := p.Request("t2", 1, "x"); d.Kind != Wait {
		t.Fatal("t2 must wait: no level-2 breakpoint after t1's step")
	}
	if d := p.Request("t1", 2, "x"); d.Kind != Grant {
		t.Fatal("t1 may continue on its own entity")
	}
	p.Performed("t1", 2, "x", 2) // level-2 cut
	if d := p.Request("t2", 1, "x"); d.Kind != Grant {
		t.Fatal("after a level-2 breakpoint t2 may access x")
	}
}

func TestPreventerLevelOneRequiresFinish(t *testing.T) {
	n, spec := preventerFixture()
	p := NewPreventer(n, spec)
	p.Begin("t1", 1)
	p.Begin("t3", 3)
	p.Request("t1", 1, "x")
	p.Performed("t1", 1, "x", 2) // even a level-2 cut...
	if d := p.Request("t3", 1, "x"); d.Kind != Wait {
		t.Fatal("level-1 transactions may never interleave: t3 must wait")
	}
	p.Finished("t1")
	if d := p.Request("t3", 1, "x"); d.Kind != Grant {
		t.Fatal("after t1 finishes t3 proceeds")
	}
}

func TestPreventerTransitiveDependencies(t *testing.T) {
	n, spec := preventerFixture()
	p := NewPreventer(n, spec)
	p.Begin("t1", 1)
	p.Begin("t2", 2)
	p.Begin("t3", 3)
	// t1 touches x and crosses a level-2 breakpoint (t2 may pass, t3 may
	// not — level(t1,t3)=1).
	p.Request("t1", 1, "x")
	p.Performed("t1", 1, "x", 2)
	// t2 picks up x (direct dep on t1), crosses level-2 cut, touches y.
	if d := p.Request("t2", 1, "x"); d.Kind != Grant {
		t.Fatal("t2 on x should grant")
	}
	p.Performed("t2", 1, "x", 2)
	if d := p.Request("t2", 2, "y"); d.Kind != Grant {
		t.Fatal("t2 on y should grant")
	}
	p.Performed("t2", 2, "y", 2)
	// t3 wants y: direct predecessor t2 is fine (level(t2,t3)=1 → t2 not
	// finished → wait!). Finish t2; then the folded dependency on t1 must
	// still block t3 until t1 finishes.
	p.Finished("t2")
	if d := p.Request("t3", 1, "y"); d.Kind != Wait {
		t.Fatal("t3 must wait on the transitive predecessor t1")
	}
	p.Finished("t1")
	if d := p.Request("t3", 1, "y"); d.Kind != Grant {
		t.Fatal("all predecessors closed: t3 proceeds")
	}
}

func TestPreventerDirectModeMissesTransitive(t *testing.T) {
	n, spec := preventerFixture()
	p := NewPreventer(n, spec)
	p.TrackTransitive = false
	p.Begin("t1", 1)
	p.Begin("t2", 2)
	p.Begin("t3", 3)
	p.Request("t1", 1, "x")
	p.Performed("t1", 1, "x", 2)
	p.Request("t2", 1, "x")
	p.Performed("t2", 1, "x", 2)
	p.Request("t2", 2, "y")
	p.Performed("t2", 2, "y", 2)
	p.Finished("t2")
	// The unsound ablation grants t3 although t1 is still open at level 1.
	if d := p.Request("t3", 1, "y"); d.Kind != Grant {
		t.Fatal("direct-only mode should (unsoundly) grant — that is the ablation's point")
	}
}

func TestPreventerAbortCleansState(t *testing.T) {
	n, spec := preventerFixture()
	p := NewPreventer(n, spec)
	p.Begin("t1", 1)
	p.Begin("t2", 2)
	p.Request("t1", 1, "x")
	p.Performed("t1", 1, "x", 3)
	if d := p.Request("t2", 1, "x"); d.Kind != Wait {
		t.Fatal("setup: t2 waits")
	}
	p.Aborted([]model.TxnID{"t1"})
	if d := p.Request("t2", 1, "x"); d.Kind != Grant {
		t.Fatal("after t1's rollback its access record must be gone")
	}
	// Restarted t1 gets a clean slate.
	p.Begin("t1", 1)
	if d := p.Request("t1", 1, "x"); d.Kind != Grant {
		t.Fatal("restarted t1 must proceed")
	}
}

func TestPreventerRetired(t *testing.T) {
	n, spec := preventerFixture()
	p := NewPreventer(n, spec)
	p.Begin("t1", 1)
	p.Request("t1", 1, "x")
	p.Performed("t1", 1, "x", 3)
	p.Finished("t1")
	p.Retired("t1")
	p.Begin("t3", 3)
	if d := p.Request("t3", 1, "x"); d.Kind != Grant {
		t.Fatal("retired transactions impose no constraints")
	}
}

func TestDetectorFindsSerializabilityCycle(t *testing.T) {
	n := nest.New(2)
	n.Add("t1")
	n.Add("t2")
	d := NewDetector(n, breakpoint.Uniform{Levels: 2, C: 2})
	d.Begin("t1", 1)
	d.Begin("t2", 2)
	mustGrant := func(txn model.TxnID, seq int, x model.EntityID) {
		t.Helper()
		if dec := d.Request(txn, seq, x); dec.Kind != Grant {
			t.Fatalf("%s[%d] on %s: %v", txn, seq, x, dec.Kind)
		}
		d.Performed(txn, seq, x, 2)
	}
	mustGrant("t1", 1, "x")
	mustGrant("t2", 1, "x") // t1 → t2
	mustGrant("t2", 2, "y")
	// t1 on y would close t2 → t1: cycle under k=2.
	dec := d.Request("t1", 2, "y")
	if dec.Kind != Abort {
		t.Fatalf("expected cycle abort, got %v", dec.Kind)
	}
	if d.Stats().Cycles != 1 {
		t.Errorf("cycles = %d", d.Stats().Cycles)
	}
	// Victim should be the youngest involved: t2.
	if len(dec.Victims) != 1 || dec.Victims[0] != "t2" {
		t.Errorf("victims = %v", dec.Victims)
	}
	d.Aborted(dec.Victims)
	// After the rollback t1 proceeds.
	if dec := d.Request("t1", 2, "y"); dec.Kind != Grant {
		t.Fatalf("post-abort request: %v", dec.Kind)
	}
}

func TestDetectorAllowsMLAInterleaving(t *testing.T) {
	// Same access pattern as above, but t1,t2 share a compatibility class
	// (k=3, every boundary a level-2 cut): no cycle in the coherent closure.
	n := nest.New(3)
	n.Add("t1", "g")
	n.Add("t2", "g")
	d := NewDetector(n, breakpoint.Uniform{Levels: 3, C: 2})
	d.Begin("t1", 1)
	d.Begin("t2", 2)
	seqs := []struct {
		txn model.TxnID
		seq int
		x   model.EntityID
	}{
		{"t1", 1, "x"}, {"t2", 1, "x"}, {"t2", 2, "y"}, {"t1", 2, "y"},
	}
	for _, s := range seqs {
		if dec := d.Request(s.txn, s.seq, s.x); dec.Kind != Grant {
			t.Fatalf("%s[%d]: %v", s.txn, s.seq, dec.Kind)
		}
		d.Performed(s.txn, s.seq, s.x, 2)
	}
	if d.Stats().Cycles != 0 {
		t.Errorf("cycles = %d, want 0 under compatibility sets", d.Stats().Cycles)
	}
}

func TestDetectorPinnedObligation(t *testing.T) {
	// k=3, t1,t2 level 2, no interior cuts (C=3): t2 seeing t1's data pins
	// t2 after ALL of t1's segment; if t1 then tries to follow t2, cycle.
	n := nest.New(3)
	n.Add("t1", "g")
	n.Add("t2", "g")
	d := NewDetector(n, breakpoint.Uniform{Levels: 3, C: 3})
	d.Begin("t1", 1)
	d.Begin("t2", 2)
	if dec := d.Request("t1", 1, "x"); dec.Kind != Grant {
		t.Fatal("t1 x")
	}
	d.Performed("t1", 1, "x", 3)
	if dec := d.Request("t2", 1, "x"); dec.Kind != Grant {
		t.Fatal("t2 x") // t1 → t2, and t2 pinned after t1's open segment
	}
	d.Performed("t2", 1, "x", 3)
	if dec := d.Request("t2", 2, "y"); dec.Kind != Grant {
		t.Fatal("t2 y")
	}
	d.Performed("t2", 2, "y", 3)
	// t1's next step must precede t2's first step (pinned) but follows
	// t2's y step if it touches y: cycle.
	dec := d.Request("t1", 2, "y")
	if dec.Kind != Abort {
		t.Fatalf("expected abort, got %v", dec.Kind)
	}
}

func TestStatsString(t *testing.T) {
	if Grant.String() != "grant" || Wait.String() != "wait" || Abort.String() != "abort" {
		t.Error("Kind strings wrong")
	}
	if Kind(99).String() != "unknown" {
		t.Error("unknown kind")
	}
}
