// Package sched implements the concurrency controls discussed in Section 6
// of the paper, behind a single simulator-driven interface:
//
//   - Preventer: the paper's cycle-prevention sketch — steps are delayed
//     until every closure-predecessor transaction has passed a breakpoint of
//     the appropriate level, so the coherent closure of the performed
//     execution is consistent with real time and hence a partial order.
//   - Detector: the paper's cycle-detection sketch — steps run optimistically
//     while the coherent closure of ≤e is maintained online; a cycle triggers
//     priority-based rollback.
//   - TwoPhase: strict two-phase locking [EGLT] with wound-wait, the
//     serializability baseline.
//   - Timestamp: basic timestamp ordering [L], the second baseline.
//   - Serial: one transaction at a time (the throughput floor).
//   - None: no control at all (the chaos ceiling; used to show why the
//     banking invariants need concurrency control).
//
// The simulator (internal/sim) calls Request before each step; a granted
// request is performed immediately and acknowledged with Performed, which
// also reports the coarseness of the breakpoint following the step. The
// simulator closes abort sets under value dependencies before calling
// Aborted, and re-offers waiting requests after every state change.
package sched

import (
	"mla/internal/model"
)

// Kind classifies a control's decision.
type Kind int

const (
	// Grant allows the step to perform now.
	Grant Kind = iota
	// Wait blocks the step; the simulator retries after the next state
	// change and resolves stalls by aborting the youngest waiter.
	Wait
	// Abort demands that Victims be rolled back before the request is
	// retried. Victims may or may not include the requester.
	Abort
)

func (k Kind) String() string {
	switch k {
	case Grant:
		return "grant"
	case Wait:
		return "wait"
	case Abort:
		return "abort"
	}
	return "unknown"
}

// Decision is a control's answer to a Request.
type Decision struct {
	Kind    Kind
	Victims []model.TxnID // for Abort: transactions to roll back
}

var grant = Decision{Kind: Grant}
var wait = Decision{Kind: Wait}

// Control is a pluggable concurrency control.
type Control interface {
	// Name identifies the control in reports.
	Name() string
	// Begin announces that transaction t (re)starts with the given
	// priority; smaller priorities are older and win conflicts.
	Begin(t model.TxnID, prio int64)
	// Request asks whether t may perform its seq-th step on entity x now.
	Request(t model.TxnID, seq int, x model.EntityID) Decision
	// Performed confirms the granted step executed. cut is the coarseness
	// (2..k) of the breakpoint following the step, or 0 when the step is
	// the transaction's last.
	Performed(t model.TxnID, seq int, x model.EntityID, cut int)
	// Finished announces that t completed all its steps.
	Finished(t model.TxnID)
	// Aborted announces that the victims were rolled back entirely (the
	// set is closed under value dependencies). A victim may Begin again.
	Aborted(victims []model.TxnID)
	// Stats returns the control's counters.
	Stats() *Stats
}

// Ticker is implemented by controls that track simulated time. The
// simulator calls Tick with the current time before dispatching each event,
// and additionally at every instant a Waker asked for.
//
// Ticker, Waker, AsyncAborter and the hooks in capabilities.go are how a
// control DECLARES an optional capability; harnesses discover them all at
// once through CapabilitiesOf instead of scattered type assertions.
type Ticker interface {
	Tick(now int64)
}

// Waker is implemented by controls that need Tick calls even when no
// workload event is scheduled — message deliveries, retransmission timers,
// heartbeats. NextWake returns the earliest future instant the control
// wants a Tick, or 0 for none; the simulator schedules a synthetic event
// there and re-offers waiting requests afterwards.
type Waker interface {
	NextWake(now int64) int64
}

// AsyncAborter is implemented by controls that decide aborts outside
// Request — probe-based deadlock detection, failure-detector escalation.
// The harness drains TakeVictims after every Tick and rolls the victims
// back through the normal dependency-closed Aborted path, so the Stats
// accounting contract below is unchanged: the victims are counted once
// each, inside Aborted.
type AsyncAborter interface {
	TakeVictims() []model.TxnID
}

// Stats counts control decisions. Every control — including dist.Preventer
// — implements one accounting contract so counters are comparable across
// controls and consistent with the harness's own rollback counts:
//
//   - Requests, Grants, and Waits count Request calls and their Grant/Wait
//     outcomes.
//   - Aborts counts victim rollbacks: incremented once per victim inside
//     Aborted (and once per suffix rollback inside AbortedTo, for controls
//     with partial recovery). A Request returning an Abort decision does
//     NOT touch Aborts — the harness echoes the decision's dependency-closed
//     victim set back through Aborted exactly once, so counting at decision
//     time would double-count every control-initiated rollback while
//     missing harness-initiated ones (stall breaks, cascades).
//   - Wounds counts Abort decisions naming a victim other than the
//     requester, incremented in Request at decision time.
//   - Cycles counts dependency cycles detected (Detector only).
//   - Deadlines counts the subset of Aborts whose victim was chosen by the
//     harness because a per-transaction deadline expired (or its client
//     walked away), NOT by the control's own wound/deadlock decision. The
//     harness reports each such victim through the DeadlineAborter
//     capability immediately before the normal Aborted call, so a deadline
//     abort is counted once in Aborts (like every rollback) and once in
//     Deadlines (its distinct cause); Aborts - Deadlines is the control's
//     own conflict-abort count.
//
// Under this contract a simulator run without partial recovery satisfies
// Control.Stats().Aborts == sim full-rollback count for every control; the
// cross-control consistency test in internal/dist pins it.
type Stats struct {
	Requests  int
	Grants    int
	Waits     int
	Aborts    int // victim rollbacks, counted per victim in Aborted/AbortedTo
	Wounds    int // abort decisions naming a non-requester victim (in Request)
	Cycles    int // dependency cycles detected (Detector only)
	Deadlines int // subset of Aborts caused by per-txn deadlines (DeadlineAborter)
}

// Snapshot returns a value copy of the counters. The pointer returned by
// Control.Stats() aliases live state on the serial controls (it keeps
// counting as the run proceeds); Snapshot is the uniform way to freeze a
// point-in-time reading — like every Snapshot() in this codebase (lock,
// wal, net), the returned struct never aliases live state, stays valid
// forever, and mutating it has no effect on the control.
func (s *Stats) Snapshot() Stats { return *s }

// None grants everything: no concurrency control. It exists to demonstrate
// which invariants break without one.
type None struct{ stats Stats }

// NewNone returns the no-op control.
func NewNone() *None { return &None{} }

// Name implements Control.
func (*None) Name() string { return "none" }

// Begin implements Control.
func (*None) Begin(model.TxnID, int64) {}

// Request implements Control.
func (n *None) Request(model.TxnID, int, model.EntityID) Decision {
	n.stats.Requests++
	n.stats.Grants++
	return grant
}

// Performed implements Control.
func (*None) Performed(model.TxnID, int, model.EntityID, int) {}

// Finished implements Control.
func (*None) Finished(model.TxnID) {}

// Aborted implements Control. None never demands aborts itself, but the
// harness may still roll its transactions back (stall breaking, cascades).
func (n *None) Aborted(victims []model.TxnID) { n.stats.Aborts += len(victims) }

// DeadlineAborted implements the DeadlineAborter capability.
func (n *None) DeadlineAborted(model.TxnID) { n.stats.Deadlines++ }

// Stats implements Control.
func (n *None) Stats() *Stats { return &n.stats }

// Serial runs one transaction at a time: a step is granted only when its
// transaction holds the single global token. It is the trivially correct
// throughput floor.
type Serial struct {
	holder model.TxnID
	stats  Stats
}

// NewSerial returns the one-at-a-time control.
func NewSerial() *Serial { return &Serial{} }

// Name implements Control.
func (*Serial) Name() string { return "serial" }

// Begin implements Control.
func (*Serial) Begin(model.TxnID, int64) {}

// Request implements Control.
func (s *Serial) Request(t model.TxnID, _ int, _ model.EntityID) Decision {
	s.stats.Requests++
	if s.holder == "" || s.holder == t {
		s.holder = t
		s.stats.Grants++
		return grant
	}
	s.stats.Waits++
	return wait
}

// Performed implements Control.
func (*Serial) Performed(model.TxnID, int, model.EntityID, int) {}

// Finished implements Control.
func (s *Serial) Finished(t model.TxnID) {
	if s.holder == t {
		s.holder = ""
	}
}

// Aborted implements Control.
func (s *Serial) Aborted(victims []model.TxnID) {
	s.stats.Aborts += len(victims)
	for _, t := range victims {
		if s.holder == t {
			s.holder = ""
		}
	}
}

// DeadlineAborted implements the DeadlineAborter capability.
func (s *Serial) DeadlineAborted(model.TxnID) { s.stats.Deadlines++ }

// Stats implements Control.
func (s *Serial) Stats() *Stats { return &s.stats }
