package sched

import (
	"sync"
	"sync/atomic"

	"mla/internal/lock"
	"mla/internal/model"
)

// ShardedTwoPhase is strict two-phase locking with wound-wait over a
// striped lock table — the concurrent engine's scalable control. Unlike
// TwoPhase it needs no waits-for graph: wound-wait is inherently
// deadlock-free (a transaction only ever waits for a strictly older one,
// so wait chains are ordered by age and cannot close into cycles — even
// cycles spanning lock shards, which no single shard could see). That is
// what lets Request run under nothing but the one shard mutex of the
// requested entity: the decision provably depends on that entity's lock
// state and the two transactions' fixed priorities, nothing else.
//
// All methods are safe for concurrent use (the Concurrent marker); stats
// are atomics folded into a Stats struct on demand.
//
// Transaction IDs are interned into dense handles at Begin (session
// admission), so priorities live in a flat slice indexed by handle instead
// of a string-keyed map: the wound-wait comparison on every contended
// Request is an RLock plus two array reads, the handle space is recycled at
// Finished, and a resident session's control state stays bounded by peak
// concurrency rather than lifetime transaction count.
type ShardedTwoPhase struct {
	locks *lock.Striped

	ids    *model.Interner[model.TxnID]
	prioMu sync.RWMutex
	prio   []int64 // indexed by interned handle; 0 = unknown/retired

	// prioFn is prioOf bound once at construction: Acquire takes a func
	// value, and binding per Request allocated on every step.
	prioFn func(model.TxnID) int64

	requests, grants, waits, wounds, aborts, deadlines atomic.Int64

	statsMu  sync.Mutex
	statsOut Stats
}

// NewShardedTwoPhase returns a wound-wait 2PL control striped over the
// given number of lock shards (≤0 picks a default suited to the engine's
// worker parallelism).
func NewShardedTwoPhase(shards int) *ShardedTwoPhase {
	if shards <= 0 {
		shards = 16
	}
	stp := &ShardedTwoPhase{
		locks: lock.NewStriped(shards),
		ids:   model.NewInterner[model.TxnID](),
	}
	stp.prioFn = stp.prioOf
	return stp
}

// ConcurrentSafe implements the Concurrent marker.
func (*ShardedTwoPhase) ConcurrentSafe() {}

// StepQuiescentSafe implements the StepQuiescent marker: strict 2PL grants
// change only when locks are released at Finished/Aborted, never because
// some other transaction performed a step.
func (*ShardedTwoPhase) StepQuiescentSafe() {}

// Name implements Control.
func (*ShardedTwoPhase) Name() string { return "2pl-sharded" }

// Begin implements Control.
func (stp *ShardedTwoPhase) Begin(t model.TxnID, prio int64) {
	h := stp.ids.Intern(t)
	stp.prioMu.Lock()
	for int(h) >= len(stp.prio) {
		stp.prio = append(stp.prio, make([]int64, int(h)+16-len(stp.prio))...)
	}
	stp.prio[h] = prio
	stp.prioMu.Unlock()
}

func (stp *ShardedTwoPhase) prioOf(t model.TxnID) int64 {
	h, ok := stp.ids.Lookup(t)
	if !ok {
		return 0
	}
	stp.prioMu.RLock()
	defer stp.prioMu.RUnlock()
	if int(h) >= len(stp.prio) {
		return 0
	}
	return stp.prio[h]
}

// Request implements Control: wound-wait on the entity's shard. Older
// requester wounds the younger holder; younger requester waits.
func (stp *ShardedTwoPhase) Request(t model.TxnID, _ int, x model.EntityID) Decision {
	stp.requests.Add(1)
	out, victim := stp.locks.Acquire(t, x, stp.prioFn)
	switch out {
	case lock.Granted:
		stp.grants.Add(1)
		return grant
	case lock.Wound:
		stp.wounds.Add(1)
		return Decision{Kind: Abort, Victims: []model.TxnID{victim}}
	default:
		stp.waits.Add(1)
		return wait
	}
}

// Performed implements Control.
func (*ShardedTwoPhase) Performed(model.TxnID, int, model.EntityID, int) {}

// Finished implements Control: strict 2PL releases everything at end, and
// the handle (with its priority slot) is recycled — an aborted transaction
// re-interns at its restart's Begin.
func (stp *ShardedTwoPhase) Finished(t model.TxnID) {
	stp.locks.Release(t)
	if h, ok := stp.ids.Lookup(t); ok {
		stp.prioMu.Lock()
		if int(h) < len(stp.prio) {
			stp.prio[h] = 0
		}
		stp.prioMu.Unlock()
		stp.ids.Release(t)
	}
}

// Aborted implements Control.
func (stp *ShardedTwoPhase) Aborted(victims []model.TxnID) {
	stp.aborts.Add(int64(len(victims)))
	for _, t := range victims {
		stp.locks.Release(t)
	}
}

// ReleaseAll implements the Releaser capability: drop every lock t still
// holds without counting an abort. The engine calls it for grants that
// raced past a rollback of t, and when t is parked for good.
func (stp *ShardedTwoPhase) ReleaseAll(t model.TxnID) { stp.locks.Release(t) }

// DeadlineAborted implements the DeadlineAborter capability: an atomic, so
// it is safe from the engine's mutex-holding path like every other method.
func (stp *ShardedTwoPhase) DeadlineAborted(model.TxnID) { stp.deadlines.Add(1) }

// Stats implements Control. The returned pointer refers to a fold of the
// atomic counters taken at call time; unlike the serial controls it is a
// snapshot, not live state.
func (stp *ShardedTwoPhase) Stats() *Stats {
	stp.statsMu.Lock()
	defer stp.statsMu.Unlock()
	stp.statsOut = Stats{
		Requests:  int(stp.requests.Load()),
		Grants:    int(stp.grants.Load()),
		Waits:     int(stp.waits.Load()),
		Aborts:    int(stp.aborts.Load()),
		Wounds:    int(stp.wounds.Load()),
		Deadlines: int(stp.deadlines.Load()),
	}
	return &stp.statsOut
}

// LockSnapshot exposes the striped table's counters for benchmarks.
func (stp *ShardedTwoPhase) LockSnapshot() lock.Stats { return stp.locks.Snapshot() }
