package sched

import "mla/internal/model"

// waitGraph is the waits-for graph shared by the blocking controls
// (Preventer, TwoPhase): an edge t → u means t's pending request cannot
// proceed until u changes state. A cycle is a deadlock; victims are chosen
// by priority elsewhere.
type waitGraph struct {
	edges map[model.TxnID]map[model.TxnID]bool
}

func newWaitGraph() *waitGraph {
	return &waitGraph{edges: make(map[model.TxnID]map[model.TxnID]bool)}
}

// setWaits replaces t's outgoing edges.
func (g *waitGraph) setWaits(t model.TxnID, blockers map[model.TxnID]bool) {
	g.edges[t] = blockers
}

// clear removes t's outgoing edges.
func (g *waitGraph) clear(t model.TxnID) { delete(g.edges, t) }

// drop removes t entirely (edges in both directions).
func (g *waitGraph) drop(t model.TxnID) {
	delete(g.edges, t)
	for _, m := range g.edges {
		delete(m, t)
	}
}

// cycleThrough returns the members of a waits-for cycle reachable from t,
// or nil. DFS over a graph bounded by the number of active transactions;
// successor order is sorted for determinism.
func (g *waitGraph) cycleThrough(t model.TxnID) []model.TxnID {
	var path []model.TxnID
	onPath := make(map[model.TxnID]bool)
	visited := make(map[model.TxnID]bool)
	var dfs func(u model.TxnID) []model.TxnID
	dfs = func(u model.TxnID) []model.TxnID {
		if onPath[u] {
			for i, w := range path {
				if w == u {
					return append([]model.TxnID(nil), path[i:]...)
				}
			}
			return path
		}
		if visited[u] {
			return nil
		}
		visited[u] = true
		onPath[u] = true
		path = append(path, u)
		next := make([]model.TxnID, 0, len(g.edges[u]))
		for v := range g.edges[u] {
			next = append(next, v)
		}
		sortTxnIDs(next)
		for _, v := range next {
			if c := dfs(v); c != nil {
				return c
			}
		}
		onPath[u] = false
		path = path[:len(path)-1]
		return nil
	}
	return dfs(t)
}

// youngest returns the member with the largest priority according to prio,
// breaking ties by larger ID.
func youngest(cycle []model.TxnID, prio func(model.TxnID) int64) model.TxnID {
	victim := cycle[0]
	best := prio(victim)
	for _, u := range cycle[1:] {
		if pr := prio(u); pr > best || (pr == best && u > victim) {
			victim, best = u, pr
		}
	}
	return victim
}

func sortTxnIDs(ids []model.TxnID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}
