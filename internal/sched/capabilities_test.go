package sched

import (
	"fmt"
	"sync"
	"testing"

	"mla/internal/breakpoint"
	"mla/internal/model"
	"mla/internal/nest"
)

// fullyHooked implements every optional capability.
type fullyHooked struct {
	None
	ticked int64
}

func (f *fullyHooked) Tick(now int64)                               { f.ticked = now }
func (f *fullyHooked) NextWake(now int64) int64                     { return now + 7 }
func (f *fullyHooked) TakeVictims() []model.TxnID                   { return []model.TxnID{"v"} }
func (f *fullyHooked) NewPriority(_ model.TxnID, _, fr int64) int64 { return fr }
func (f *fullyHooked) AbortedTo(model.TxnID, int)                   {}
func (f *fullyHooked) Retired(model.TxnID)                          {}
func (f *fullyHooked) ReleaseAll(model.TxnID)                       {}
func (f *fullyHooked) ConcurrentSafe()                              {}

func TestCapabilitiesDiscovery(t *testing.T) {
	bare := CapabilitiesOf(NewNone())
	if bare.Tick != nil || bare.NextWake != nil || bare.TakeVictims != nil ||
		bare.NewPriority != nil || bare.AbortedTo != nil || bare.Retired != nil ||
		bare.ReleaseAll != nil || bare.Concurrent {
		t.Fatalf("None advertised capabilities it lacks: %+v", bare)
	}

	f := &fullyHooked{}
	caps := CapabilitiesOf(f)
	if caps.Tick == nil || caps.NextWake == nil || caps.TakeVictims == nil ||
		caps.NewPriority == nil || caps.AbortedTo == nil || caps.Retired == nil ||
		caps.ReleaseAll == nil || !caps.Concurrent {
		t.Fatalf("full control missing capabilities: %+v", caps)
	}
	// The hooks are bound to the control, not copies of it.
	caps.Tick(42)
	if f.ticked != 42 {
		t.Fatal("Tick hook not bound to the receiver")
	}
	if caps.NextWake(10) != 17 {
		t.Fatal("NextWake hook misbound")
	}
	// The legacy interfaces stay satisfied — compatibility contract.
	var _ Ticker = f
	var _ Waker = f
	var _ AsyncAborter = f
	var _ RestartPrioritizer = f
	var _ PartialAborter = f
	var _ Retirer = f
	var _ Releaser = f
	var _ Concurrent = f
}

func TestControlKindRoundTrip(t *testing.T) {
	n := nest.New(2)
	spec := breakpoint.Func{Levels: 2, Fn: func(model.TxnID, []model.Step) int { return 2 }}
	for k := KindNone; k <= KindDetect; k++ {
		parsed, err := ParseControlKind(k.String())
		if err != nil || parsed != k {
			t.Fatalf("round trip %v: parsed %v err %v", k, parsed, err)
		}
		c, err := New(k, n, spec)
		if err != nil {
			t.Fatalf("New(%v): %v", k, err)
		}
		if c.Name() != k.String() {
			t.Fatalf("New(%v).Name() = %q", k, c.Name())
		}
	}
	if _, err := ParseControlKind("bogus"); err == nil {
		t.Fatal("bogus kind parsed")
	}
	if _, err := New(KindPrevent, nil, nil); err == nil {
		t.Fatal("prevent without nest/spec must fail")
	}
}

func TestShardedTwoPhaseWoundWait(t *testing.T) {
	stp := NewShardedTwoPhase(8)
	stp.Begin("old", 1)
	stp.Begin("young", 9)
	if d := stp.Request("young", 1, "x"); d.Kind != Grant {
		t.Fatalf("free lock: %v", d.Kind)
	}
	// Older requester wounds the younger holder.
	d := stp.Request("old", 1, "x")
	if d.Kind != Abort || len(d.Victims) != 1 || d.Victims[0] != "young" {
		t.Fatalf("wound decision = %+v", d)
	}
	stp.Aborted(d.Victims)
	if d := stp.Request("old", 1, "x"); d.Kind != Grant {
		t.Fatalf("post-wound retry: %v", d.Kind)
	}
	// Younger requester waits for the older holder.
	stp.Begin("young2", 8)
	if d := stp.Request("young2", 1, "x"); d.Kind != Wait {
		t.Fatalf("younger vs older: %v", d.Kind)
	}
	stp.Finished("old")
	if d := stp.Request("young2", 1, "x"); d.Kind != Grant {
		t.Fatalf("after release: %v", d.Kind)
	}
	st := stp.Stats()
	if st.Requests != 5 || st.Grants != 3 || st.Waits != 1 || st.Wounds != 1 || st.Aborts != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// The Stats pointer is a frozen fold, per the doc contract.
	before := *st
	stp.Request("young2", 2, "y")
	if *st != before {
		t.Fatal("ShardedTwoPhase.Stats must return a snapshot")
	}
}

// TestShardedTwoPhaseConcurrent hammers the control from parallel
// goroutines; the race detector validates the locking discipline and the
// final lock table must be empty.
func TestShardedTwoPhaseConcurrent(t *testing.T) {
	stp := NewShardedTwoPhase(8)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id := model.TxnID(fmt.Sprintf("t%d", w))
			stp.Begin(id, int64(w+1))
			for op := 0; op < 500; op++ {
				x := model.EntityID(fmt.Sprintf("e%d", (w*7+op)%16))
				switch d := stp.Request(id, op, x); d.Kind {
				case Abort:
					stp.Aborted(d.Victims)
					for _, v := range d.Victims {
						stp.Begin(v, int64(len(d.Victims)+op)) // victim restarts
					}
				}
			}
			stp.Finished(id)
		}(w)
	}
	wg.Wait()
	if got := stp.LockSnapshot(); got.Locked != 0 {
		t.Fatalf("locks leaked: %+v", got)
	}
	if st := stp.Stats(); st.Requests != 8*500 {
		t.Fatalf("requests = %d", st.Requests)
	}
}
