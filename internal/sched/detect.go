package sched

import (
	"mla/internal/breakpoint"
	"mla/internal/coherent"
	"mla/internal/model"
	"mla/internal/nest"
)

// Detector implements the cycle-detection strategy of Section 6: steps run
// optimistically while the coherent closure of the dependency relation ≤e
// of the performed execution is maintained online; when a step would close
// a cycle — i.e. would make the execution non-correctable by Theorem 2 —
// the youngest transaction involved is rolled back and the closure is
// rebuilt without it.
//
// The paper predicts that "fewer cycles would be detected using the
// multilevel atomicity definition than if strict serializability were
// required, leading to fewer rollbacks" — experiment E4 measures exactly
// this by running the Detector with an MLA specification versus the k=2
// serializability specification on identical workloads.
type Detector struct {
	nest *nest.Nest
	spec breakpoint.Spec
	oc   *coherent.Online

	prio     map[model.TxnID]int64
	finished map[model.TxnID]bool

	stats Stats
}

// NewDetector builds the detection control for the given nest and
// breakpoint specification.
func NewDetector(n *nest.Nest, spec breakpoint.Spec) *Detector {
	if n.K() != spec.K() {
		panic("sched: nest and breakpoint spec disagree on k")
	}
	return &Detector{
		nest:     n,
		spec:     spec,
		oc:       coherent.NewOnline(n.K(), n.Level),
		prio:     make(map[model.TxnID]int64),
		finished: make(map[model.TxnID]bool),
	}
}

// Name implements Control.
func (d *Detector) Name() string { return "detect" }

// Begin implements Control.
func (d *Detector) Begin(t model.TxnID, prio int64) {
	d.prio[t] = prio
	delete(d.finished, t)
}

// Request implements Control. The step is tentatively added to the closure;
// on a cycle it is withdrawn and the youngest transaction involved is
// chosen as the victim.
func (d *Detector) Request(t model.TxnID, _ int, x model.EntityID) Decision {
	d.stats.Requests++
	if d.oc.AddStep(t, x) {
		d.stats.Grants++
		return grant
	}
	d.stats.Cycles++
	d.oc.PopStep()
	victim := d.pickVictim(append(d.oc.CycleTxns(), t))
	if victim != t {
		d.stats.Wounds++
	}
	return Decision{Kind: Abort, Victims: []model.TxnID{victim}}
}

// pickVictim chooses the youngest (largest priority) unfinished transaction
// among the candidates, falling back to the last candidate (the requester).
func (d *Detector) pickVictim(candidates []model.TxnID) model.TxnID {
	victim := candidates[len(candidates)-1]
	best := int64(-1)
	for _, c := range candidates {
		if d.finished[c] {
			continue
		}
		if p, ok := d.prio[c]; ok && p > best {
			best = p
			victim = c
		}
	}
	return victim
}

// Performed implements Control: it records the breakpoint following the
// step, releasing pinned obligations.
func (d *Detector) Performed(t model.TxnID, _ int, _ model.EntityID, cut int) {
	if cut > 0 {
		d.oc.AddCut(t, cut)
	}
}

// Finished implements Control.
func (d *Detector) Finished(t model.TxnID) { d.finished[t] = true }

// AbortedTo implements the simulator's partial-recovery hook: transaction
// t's events beyond seq = keep are removed and the closure replayed; t
// resumes from the kept prefix.
func (d *Detector) AbortedTo(t model.TxnID, keep int) {
	delete(d.finished, t)
	d.stats.Aborts++
	d.oc.RebuildPartial(map[model.TxnID]int{t: keep})
}

// Aborted implements Control: the victims' events are removed and the
// closure replayed. This also cleans the dirty state left by a rejected
// AddStep.
func (d *Detector) Aborted(victims []model.TxnID) {
	d.stats.Aborts += len(victims)
	drop := make(map[model.TxnID]bool, len(victims))
	for _, t := range victims {
		drop[t] = true
		delete(d.finished, t)
	}
	d.oc.Rebuild(drop)
}

// DeadlineAborted implements the DeadlineAborter capability.
func (d *Detector) DeadlineAborted(model.TxnID) { d.stats.Deadlines++ }

// Stats implements Control.
func (d *Detector) Stats() *Stats { return &d.stats }
