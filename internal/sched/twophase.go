package sched

import (
	"mla/internal/lock"
	"mla/internal/model"
)

// TwoPhase is strict two-phase locking [EGLT] over exclusive entity locks
// (every step in the paper's model is a read-modify-write), the
// serializability baseline. Deadlocks are resolved exactly as in the
// Preventer — a waits-for graph with youngest-victim selection — so the E5
// comparison isolates the effect of the atomicity criterion, not of the
// deadlock policy. All locks are held to transaction end, so aborts never
// cascade.
type TwoPhase struct {
	locks   *lock.Manager
	prio    map[model.TxnID]int64
	waitFor *waitGraph
	stats   Stats
}

// NewTwoPhase returns a strict 2PL control.
func NewTwoPhase() *TwoPhase {
	return &TwoPhase{
		locks:   lock.NewManager(),
		prio:    make(map[model.TxnID]int64),
		waitFor: newWaitGraph(),
	}
}

// Name implements Control.
func (tp *TwoPhase) Name() string { return "2pl" }

// Begin implements Control.
func (tp *TwoPhase) Begin(t model.TxnID, prio int64) { tp.prio[t] = prio }

// Request implements Control.
func (tp *TwoPhase) Request(t model.TxnID, _ int, x model.EntityID) Decision {
	tp.stats.Requests++
	ok, holder := tp.locks.TryAcquire(t, x)
	if ok {
		tp.waitFor.clear(t)
		tp.stats.Grants++
		return grant
	}
	tp.waitFor.setWaits(t, map[model.TxnID]bool{holder: true})
	if cycle := tp.waitFor.cycleThrough(t); len(cycle) > 0 {
		victim := youngest(cycle, func(u model.TxnID) int64 { return tp.prio[u] })
		tp.waitFor.clear(t)
		if victim != t {
			tp.stats.Wounds++
		}
		return Decision{Kind: Abort, Victims: []model.TxnID{victim}}
	}
	tp.stats.Waits++
	return wait
}

// Performed implements Control.
func (*TwoPhase) Performed(model.TxnID, int, model.EntityID, int) {}

// Finished implements Control.
func (tp *TwoPhase) Finished(t model.TxnID) {
	tp.locks.Release(t)
	tp.waitFor.drop(t)
	delete(tp.prio, t)
}

// Aborted implements Control.
func (tp *TwoPhase) Aborted(victims []model.TxnID) {
	tp.stats.Aborts += len(victims)
	for _, t := range victims {
		tp.locks.Release(t)
		tp.waitFor.drop(t)
	}
}

// DeadlineAborted implements the DeadlineAborter capability.
func (tp *TwoPhase) DeadlineAborted(model.TxnID) { tp.stats.Deadlines++ }

// Stats implements Control.
func (tp *TwoPhase) Stats() *Stats { return &tp.stats }

// Timestamp is basic timestamp ordering [L]: each entity remembers the
// highest transaction priority (its begin timestamp) that has accessed it;
// a request from an older transaction than the entity's high-water mark is
// rejected and the requester restarts with a fresh timestamp. Because
// values are written in place, aborts cascade; the simulator closes the
// victim set under value dependencies.
type Timestamp struct {
	prio  map[model.TxnID]int64
	maxTS map[model.EntityID]int64
	stats Stats
}

// NewTimestamp returns a basic TO control.
func NewTimestamp() *Timestamp {
	return &Timestamp{prio: make(map[model.TxnID]int64), maxTS: make(map[model.EntityID]int64)}
}

// Name implements Control.
func (*Timestamp) Name() string { return "tso" }

// Begin implements Control.
func (ts *Timestamp) Begin(t model.TxnID, prio int64) { ts.prio[t] = prio }

// Request implements Control.
func (ts *Timestamp) Request(t model.TxnID, _ int, x model.EntityID) Decision {
	ts.stats.Requests++
	if p := ts.prio[t]; p >= ts.maxTS[x] {
		ts.stats.Grants++
		return grant
	}
	return Decision{Kind: Abort, Victims: []model.TxnID{t}}
}

// Performed implements Control.
func (ts *Timestamp) Performed(t model.TxnID, _ int, x model.EntityID, _ int) {
	if p := ts.prio[t]; p > ts.maxTS[x] {
		ts.maxTS[x] = p
	}
}

// Finished implements Control.
func (ts *Timestamp) Finished(t model.TxnID) { delete(ts.prio, t) }

// Aborted implements Control.
func (ts *Timestamp) Aborted(victims []model.TxnID) { ts.stats.Aborts += len(victims) }

// NewPriority restarts an aborted transaction with a fresh timestamp — a
// transaction aborts under TO precisely because its timestamp is too old,
// so keeping it would livelock. Recognized by the simulator.
func (ts *Timestamp) NewPriority(_ model.TxnID, _, fresh int64) int64 { return fresh }

// DeadlineAborted implements the DeadlineAborter capability.
func (ts *Timestamp) DeadlineAborted(model.TxnID) { ts.stats.Deadlines++ }

// Stats implements Control.
func (ts *Timestamp) Stats() *Stats { return &ts.stats }
