package sched

import (
	"fmt"

	"mla/internal/breakpoint"
	"mla/internal/model"
	"mla/internal/nest"
)

// RestartPrioritizer is implemented by controls that need a transaction's
// priority recomputed when it restarts after an abort. Timestamp ordering
// takes the fresh (larger) timestamp — its aborts exist precisely because
// the old one aged out — while wound-wait controls keep the original so
// aged transactions eventually win.
type RestartPrioritizer interface {
	NewPriority(t model.TxnID, old, fresh int64) int64
}

// PartialAborter is implemented by controls that can clamp their
// bookkeeping for t to a kept step prefix instead of a full rollback.
type PartialAborter interface {
	AbortedTo(t model.TxnID, keep int)
}

// Retirer is implemented by controls that want to know when a finished
// transaction committed, so retained per-transaction state can be freed.
type Retirer interface {
	Retired(t model.TxnID)
}

// Concurrent marks a control whose Begin/Request/Performed/Finished/
// Aborted methods are safe to call from multiple goroutines without an
// external mutex. The engine serializes calls to every other control
// behind its global lock; a Concurrent control is invoked on the reduced
// per-entity critical sections instead.
type Concurrent interface {
	ConcurrentSafe()
}

// StepQuiescent marks a control for which a performed step can never change
// the outcome of another transaction's pending request: decisions move only
// when locks are released at Finished/Aborted (strict two-phase locking),
// never on step progress. The harness uses it to skip waking sleepers after
// every granted step — under a strict control those wakeups are a thundering
// herd that re-requests, loses, and sleeps again. Controls whose decisions
// observe step progress (closure previews, unit-boundary releases) must NOT
// declare it.
type StepQuiescent interface {
	StepQuiescentSafe()
}

// Releaser is implemented by Concurrent controls whose Request acquires
// resources (locks) that outlive the call. Because such a Request runs
// outside the harness's global mutex, it can race past a rollback of the
// requester: the abort releases everything t held, then the in-flight
// Request grants one more lock for the now-dead attempt. ReleaseAll
// discards every resource t still holds WITHOUT counting an abort (the
// rollback was already counted); the harness calls it when it detects such
// a stale grant, and when it parks a transaction for good.
type Releaser interface {
	ReleaseAll(t model.TxnID)
}

// DeadlineAborter is implemented by controls that attribute rollbacks to
// their cause. The harness calls DeadlineAborted(t) immediately before the
// Aborted call that rolls t back because its per-transaction deadline
// expired (or its client walked away mid-run), so the control can count
// deadline aborts distinctly from its own wound/deadlock victims in
// Stats.Deadlines. The call carries no state change beyond the counter —
// the rollback itself still flows through Aborted.
type DeadlineAborter interface {
	DeadlineAborted(t model.TxnID)
}

// Capabilities is the discovery result for a Control's optional hooks —
// the Ticker/Waker/AsyncAborter interfaces plus the restart-priority,
// partial-recovery, and retirement hooks that harnesses previously probed
// with scattered type assertions. Each field is a typed function bound to
// the control, or nil when the control does not implement the hook; a
// harness asserts once, then branches on nil.
//
// The underlying single-method interfaces remain the way a control DECLARES
// a capability — implement Ticker and CapabilitiesOf finds it. Capabilities
// only changes how harnesses CONSUME them.
type Capabilities struct {
	// Tick advances the control's notion of simulated time (Ticker).
	Tick func(now int64)
	// NextWake returns the control's next requested wake-up instant, or 0
	// for none (Waker).
	NextWake func(now int64) int64
	// TakeVictims drains asynchronously decided abort victims
	// (AsyncAborter).
	TakeVictims func() []model.TxnID
	// NewPriority recomputes a restart priority (RestartPrioritizer).
	NewPriority func(t model.TxnID, old, fresh int64) int64
	// AbortedTo clamps bookkeeping to a kept prefix (PartialAborter).
	AbortedTo func(t model.TxnID, keep int)
	// Retired frees state for a committed transaction (Retirer).
	Retired func(t model.TxnID)
	// ReleaseAll discards resources held by a rolled-back or parked
	// transaction without abort accounting (Releaser).
	ReleaseAll func(t model.TxnID)
	// DeadlineAborted attributes the upcoming Aborted call for t to a
	// per-transaction deadline (DeadlineAborter).
	DeadlineAborted func(t model.TxnID)
	// Concurrent reports whether the control is safe for concurrent calls
	// (the Concurrent marker).
	Concurrent bool
	// QuiescentSteps reports whether a performed step can never unblock
	// another transaction's pending request (the StepQuiescent marker).
	QuiescentSteps bool
}

// CapabilitiesOf probes c once for every optional hook. The zero value of
// every absent capability is nil (or false), so callers write
// `if caps.Tick != nil { caps.Tick(now) }`.
func CapabilitiesOf(c Control) Capabilities {
	var caps Capabilities
	if tk, ok := c.(Ticker); ok {
		caps.Tick = tk.Tick
	}
	if w, ok := c.(Waker); ok {
		caps.NextWake = w.NextWake
	}
	if aa, ok := c.(AsyncAborter); ok {
		caps.TakeVictims = aa.TakeVictims
	}
	if rp, ok := c.(RestartPrioritizer); ok {
		caps.NewPriority = rp.NewPriority
	}
	if pa, ok := c.(PartialAborter); ok {
		caps.AbortedTo = pa.AbortedTo
	}
	if ret, ok := c.(Retirer); ok {
		caps.Retired = ret.Retired
	}
	if rel, ok := c.(Releaser); ok {
		caps.ReleaseAll = rel.ReleaseAll
	}
	if da, ok := c.(DeadlineAborter); ok {
		caps.DeadlineAborted = da.DeadlineAborted
	}
	_, caps.Concurrent = c.(Concurrent)
	_, caps.QuiescentSteps = c.(StepQuiescent)
	return caps
}

// ControlKind names a control family for constructor-by-kind creation —
// the public façade's way to build controls without reaching into
// constructor-specific signatures. (Kind was already taken by decision
// kinds, hence the longer name.)
type ControlKind int

const (
	// KindNone grants everything (the chaos ceiling).
	KindNone ControlKind = iota
	// KindSerial runs one transaction at a time (the throughput floor).
	KindSerial
	// KindTwoPhase is strict 2PL with waits-for deadlock detection.
	KindTwoPhase
	// KindShardedTwoPhase is strict 2PL with wound-wait over a striped
	// lock table; the concurrent engine's scalable control.
	KindShardedTwoPhase
	// KindTimestamp is basic timestamp ordering.
	KindTimestamp
	// KindPrevent is the paper's cycle-prevention control.
	KindPrevent
	// KindPreventDirect is prevention without transitive tracking (the
	// ablation).
	KindPreventDirect
	// KindDetect is the paper's cycle-detection control.
	KindDetect
)

func (k ControlKind) String() string {
	switch k {
	case KindNone:
		return "none"
	case KindSerial:
		return "serial"
	case KindTwoPhase:
		return "2pl"
	case KindShardedTwoPhase:
		return "2pl-sharded"
	case KindTimestamp:
		return "tso"
	case KindPrevent:
		return "prevent"
	case KindPreventDirect:
		return "prevent-direct"
	case KindDetect:
		return "detect"
	}
	return "unknown"
}

// ParseControlKind inverts ControlKind.String.
func ParseControlKind(name string) (ControlKind, error) {
	for k := KindNone; k <= KindDetect; k++ {
		if k.String() == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("sched: unknown control kind %q", name)
}

// New constructs a fresh control of the given kind. The MLA controls
// (prevent, prevent-direct, detect) need the class nest and breakpoint
// spec; the serializability baselines ignore both, and passing nil is fine
// for them.
func New(kind ControlKind, n *nest.Nest, spec breakpoint.Spec) (Control, error) {
	switch kind {
	case KindNone:
		return NewNone(), nil
	case KindSerial:
		return NewSerial(), nil
	case KindTwoPhase:
		return NewTwoPhase(), nil
	case KindShardedTwoPhase:
		return NewShardedTwoPhase(0), nil
	case KindTimestamp:
		return NewTimestamp(), nil
	case KindPrevent, KindPreventDirect:
		if n == nil || spec == nil {
			return nil, fmt.Errorf("sched: %s requires a nest and a breakpoint spec", kind)
		}
		p := NewPreventer(n, spec)
		p.TrackTransitive = kind == KindPrevent
		return p, nil
	case KindDetect:
		if n == nil || spec == nil {
			return nil, fmt.Errorf("sched: detect requires a nest and a breakpoint spec")
		}
		return NewDetector(n, spec), nil
	}
	return nil, fmt.Errorf("sched: unknown control kind %d", int(kind))
}
