// Package cad implements the paper's second example (Section 2): Utopian
// Planning, Inc., whose city plans are concurrently modified by experts
// organized into specialties and teams, while the public relations
// department takes consistent snapshots.
//
// The 5-nest follows Section 4.2's computer-aided design example: π(2)
// groups all modification transactions together and all snapshot
// transactions together; π(3) refines modifications by specialty; π(4) by
// team; π(5) is singletons. Snapshots therefore relate to modifications
// only at level 1 and are atomic with respect to them.
//
// A modification is a sequence of work units. Each unit touches the team's
// scratch pad, increments one plan object, and then increments the owning
// specialty's total by the same amount — so the invariant
//
//	sum(objects of specialty) == specialty total
//
// holds at every unit boundary but is broken mid-unit. Boundaries encode
// the trust hierarchy: after the scratch step anyone in the same specialty
// may interleave (coarseness 3), after the object step only teammates
// (coarseness 4), and after the total step — a completed unit — any other
// modification may (coarseness 2). A snapshot reads every object and total
// and records the accumulated inconsistency; because snapshots are atomic
// with respect to modifications, a committed snapshot of any correctable
// execution must record exactly 0.
package cad

import (
	"fmt"
	"math/rand"

	"mla/internal/breakpoint"
	"mla/internal/model"
	"mla/internal/nest"
)

// Params configures a generated CAD workload.
type Params struct {
	Specialties       int
	TeamsPerSpecialty int
	ObjectsPerSpec    int
	Mods              int
	UnitsPerMod       int
	Snapshots         int
	CrossSpecialtyPct int // percentage of units touching another specialty
	Seed              int64
}

// DefaultParams returns a moderately contended configuration.
func DefaultParams() Params {
	return Params{
		Specialties:       3,
		TeamsPerSpecialty: 2,
		ObjectsPerSpec:    4,
		Mods:              18,
		UnitsPerMod:       3,
		Snapshots:         2,
		CrossSpecialtyPct: 20,
		Seed:              1,
	}
}

// Workload bundles the programs, the 5-level specification, and the initial
// store.
type Workload struct {
	Params   Params
	Programs []model.Program
	Nest     *nest.Nest
	Spec     breakpoint.Spec
	Init     map[model.EntityID]model.Value

	mods  map[model.TxnID]*Modification
	snaps map[model.TxnID]*Snapshot
}

func object(spec, i int) model.EntityID {
	return model.EntityID(fmt.Sprintf("plan/s%02d/o%02d", spec, i))
}

func totalEntity(spec int) model.EntityID {
	return model.EntityID(fmt.Sprintf("plan/s%02d/total", spec))
}

func scratch(spec, team int) model.EntityID {
	return model.EntityID(fmt.Sprintf("scratch/s%02d/t%02d", spec, team))
}

// Unit is one work unit of a modification: touch the scratch pad, add Delta
// to Object, add Delta to the specialty total.
type Unit struct {
	Scratch model.EntityID
	Object  model.EntityID
	Total   model.EntityID
	Delta   model.Value
}

// Modification is an expert's change transaction: a fixed sequence of work
// units (3 steps each).
type Modification struct {
	Txn       model.TxnID
	Specialty int
	Team      int
	Units     []Unit
}

// ID implements model.Program.
func (m *Modification) ID() model.TxnID { return m.Txn }

// Init implements model.Program.
func (m *Modification) Init() model.ProgState { return modState{m: m} }

type modState struct {
	m    *Modification
	unit int
	step int // 0 scratch, 1 object, 2 total
}

func (s modState) Next() (model.EntityID, bool) {
	if s.unit >= len(s.m.Units) {
		return "", false
	}
	u := s.m.Units[s.unit]
	switch s.step {
	case 0:
		return u.Scratch, true
	case 1:
		return u.Object, true
	default:
		return u.Total, true
	}
}

func (s modState) Apply(v model.Value) (model.Value, string, model.ProgState) {
	u := s.m.Units[s.unit]
	ns := s
	var label string
	var w model.Value
	switch s.step {
	case 0:
		label, w = "scratch", v+1
		ns.step = 1
	case 1:
		label, w = "object", v+u.Delta
		ns.step = 2
	default:
		label, w = "total", v+u.Delta
		ns.step = 0
		ns.unit++
	}
	return w, label, ns
}

// Snapshot reads every object and every specialty total and records the
// accumulated absolute inconsistency |sum(objects) − total| in its Result
// entity.
type Snapshot struct {
	Txn     model.TxnID
	Specs   int
	Objects int
	Result  model.EntityID
}

// ID implements model.Program.
func (s *Snapshot) ID() model.TxnID { return s.Txn }

// Init implements model.Program.
func (s *Snapshot) Init() model.ProgState { return snapState{s: s} }

type snapState struct {
	s       *Snapshot
	spec    int
	obj     int // 0..Objects-1 objects, Objects = the total entity
	sum     model.Value
	badness model.Value
}

func (st snapState) Next() (model.EntityID, bool) {
	if st.spec < st.s.Specs {
		if st.obj < st.s.Objects {
			return object(st.spec, st.obj), true
		}
		return totalEntity(st.spec), true
	}
	if st.spec == st.s.Specs {
		return st.s.Result, true
	}
	return "", false
}

func (st snapState) Apply(v model.Value) (model.Value, string, model.ProgState) {
	ns := st
	if st.spec < st.s.Specs {
		if st.obj < st.s.Objects {
			ns.sum += v
			ns.obj++
			return v, "read", ns
		}
		diff := ns.sum - v
		if diff < 0 {
			diff = -diff
		}
		ns.badness += diff
		ns.sum = 0
		ns.obj = 0
		ns.spec++
		return v, "read", ns
	}
	ns.spec++
	return ns.badness, "record", ns
}

// Generate builds a deterministic CAD workload.
func Generate(p Params) *Workload {
	rng := rand.New(rand.NewSource(p.Seed))
	wl := &Workload{
		Params: p,
		Init:   make(map[model.EntityID]model.Value),
		mods:   make(map[model.TxnID]*Modification),
		snaps:  make(map[model.TxnID]*Snapshot),
	}
	for s := 0; s < p.Specialties; s++ {
		for o := 0; o < p.ObjectsPerSpec; o++ {
			wl.Init[object(s, o)] = 0
		}
		wl.Init[totalEntity(s)] = 0
		for t := 0; t < p.TeamsPerSpecialty; t++ {
			wl.Init[scratch(s, t)] = 0
		}
	}

	n := nest.New(5)
	var programs []model.Program
	for i := 0; i < p.Mods; i++ {
		spec := rng.Intn(p.Specialties)
		team := rng.Intn(p.TeamsPerSpecialty)
		id := model.TxnID(fmt.Sprintf("mod-%03d", i))
		m := &Modification{Txn: id, Specialty: spec, Team: team}
		for u := 0; u < p.UnitsPerMod; u++ {
			target := spec
			if p.Specialties > 1 && rng.Intn(100) < p.CrossSpecialtyPct {
				for target == spec {
					target = rng.Intn(p.Specialties)
				}
			}
			m.Units = append(m.Units, Unit{
				Scratch: scratch(spec, team),
				Object:  object(target, rng.Intn(p.ObjectsPerSpec)),
				Total:   totalEntity(target),
				Delta:   model.Value(1 + rng.Intn(5)),
			})
		}
		wl.mods[id] = m
		programs = append(programs, m)
		n.Add(id, "mods", fmt.Sprintf("spec-%02d", spec), fmt.Sprintf("team-%02d", team))
	}
	for i := 0; i < p.Snapshots; i++ {
		id := model.TxnID(fmt.Sprintf("snap-%03d", i))
		s := &Snapshot{Txn: id, Specs: p.Specialties, Objects: p.ObjectsPerSpec, Result: model.EntityID("snapres/" + string(id))}
		wl.snaps[id] = s
		wl.Init[s.Result] = -1 // sentinel: distinguishes "never ran" from 0
		programs = append(programs, s)
		n.Add(id, "snaps", "snap/"+string(id), "snap/"+string(id))
	}
	rng.Shuffle(len(programs), func(i, j int) { programs[i], programs[j] = programs[j], programs[i] })
	wl.Programs = programs
	wl.Nest = n
	wl.Spec = breakpoint.Func{Levels: 5, Fn: wl.cutAfter}
	return wl
}

// cutAfter places the CAD breakpoints: for modifications, coarseness 3
// after a scratch step (specialty), 4 after an object step (team), 2 after
// a total step (completed unit — any modification); snapshots use
// coarseness 2 throughout (other snapshots may interleave; modifications
// relate to snapshots only at level 1 and so never can).
func (wl *Workload) cutAfter(t model.TxnID, prefix []model.Step) int {
	if _, ok := wl.mods[t]; ok {
		switch prefix[len(prefix)-1].Label {
		case "scratch":
			return 3
		case "object":
			return 4
		default:
			return 2
		}
	}
	return 2
}

// Check evaluates the CAD invariants against a run.
type Invariants struct {
	TotalsConsistent bool // final object sums match specialty totals
	SnapshotsClean   int  // committed snapshots recording 0 inconsistency
	SnapshotsDirty   int
	TraceValid       error
}

// Check verifies that (a) at quiescence every specialty's object sum equals
// its total, (b) every committed snapshot recorded zero inconsistency
// (guaranteed for correctable executions), and (c) the surviving trace's
// values chain.
func (wl *Workload) Check(exec model.Execution, final map[model.EntityID]model.Value) Invariants {
	inv := Invariants{TotalsConsistent: true}
	for s := 0; s < wl.Params.Specialties; s++ {
		var sum model.Value
		for o := 0; o < wl.Params.ObjectsPerSpec; o++ {
			sum += final[object(s, o)]
		}
		if sum != final[totalEntity(s)] {
			inv.TotalsConsistent = false
		}
	}
	for _, s := range wl.snaps {
		if final[s.Result] == 0 {
			inv.SnapshotsClean++
		} else {
			inv.SnapshotsDirty++
		}
	}
	inv.TraceValid = exec.Validate(wl.Init)
	return inv
}

// WithDepth returns the workload's specification flattened to k levels
// (2 ≤ k ≤ 5) for the nest-depth experiment (E7): intermediate nest labels
// beyond level k−2 are dropped and breakpoint coarseness is clamped to k —
// a boundary whose original coarseness exceeds k admits nobody under the
// flattened nest, exactly as if it were absent. k=2 is serializability;
// k=5 is the full hierarchy.
func (wl *Workload) WithDepth(k int) (*nest.Nest, breakpoint.Spec) {
	if k < 2 || k > 5 {
		panic(fmt.Sprintf("cad: depth %d out of range [2,5]", k))
	}
	n := nest.New(k)
	for id, m := range wl.mods {
		full := []string{"mods", fmt.Sprintf("spec-%02d", m.Specialty), fmt.Sprintf("team-%02d", m.Team)}
		n.Add(id, full[:k-2]...)
	}
	for id := range wl.snaps {
		full := []string{"snaps", "snap/" + string(id), "snap/" + string(id)}
		n.Add(id, full[:k-2]...)
	}
	return n, breakpoint.Clamp(breakpoint.Func{Levels: 5, Fn: wl.cutAfter}, k)
}

// Snapshots returns the snapshot transactions, for reporting.
func (wl *Workload) Snapshots() map[model.TxnID]*Snapshot { return wl.snaps }
