package cad

import (
	"testing"

	"mla/internal/coherent"
	"mla/internal/model"
)

func TestModificationUnitStructure(t *testing.T) {
	m := &Modification{Txn: "m", Specialty: 0, Team: 0, Units: []Unit{
		{Scratch: "s", Object: "o1", Total: "tot", Delta: 3},
		{Scratch: "s", Object: "o2", Total: "tot", Delta: 2},
	}}
	vals := map[model.EntityID]model.Value{}
	e, err := model.RunSerial([]model.Program{m}, vals)
	if err != nil {
		t.Fatal(err)
	}
	if len(e) != 6 {
		t.Fatalf("steps = %d, want 6", len(e))
	}
	wantLabels := []string{"scratch", "object", "total", "scratch", "object", "total"}
	for i, s := range e {
		if s.Label != wantLabels[i] {
			t.Errorf("step %d label %q, want %q", i, s.Label, wantLabels[i])
		}
	}
	if vals["o1"] != 3 || vals["o2"] != 2 || vals["tot"] != 5 || vals["s"] != 2 {
		t.Errorf("vals = %v", vals)
	}
}

func TestSnapshotDetectsInconsistency(t *testing.T) {
	s := &Snapshot{Txn: "snap", Specs: 2, Objects: 2, Result: "res"}
	vals := map[model.EntityID]model.Value{
		object(0, 0): 3, object(0, 1): 4, totalEntity(0): 7, // consistent
		object(1, 0): 5, object(1, 1): 0, totalEntity(1): 9, // off by 4
		"res": -1,
	}
	if _, err := model.RunSerial([]model.Program{s}, vals); err != nil {
		t.Fatal(err)
	}
	if vals["res"] != 4 {
		t.Errorf("res = %d, want 4", vals["res"])
	}
}

func TestSnapshotCleanOnConsistentState(t *testing.T) {
	s := &Snapshot{Txn: "snap", Specs: 1, Objects: 2, Result: "res"}
	vals := map[model.EntityID]model.Value{
		object(0, 0): 3, object(0, 1): 4, totalEntity(0): 7, "res": -1,
	}
	model.RunSerial([]model.Program{s}, vals)
	if vals["res"] != 0 {
		t.Errorf("res = %d, want 0", vals["res"])
	}
}

func TestGenerateShapeAndDeterminism(t *testing.T) {
	p := DefaultParams()
	wl := Generate(p)
	if len(wl.Programs) != p.Mods+p.Snapshots {
		t.Fatalf("programs = %d", len(wl.Programs))
	}
	if wl.Nest.K() != 5 || wl.Spec.K() != 5 {
		t.Fatal("CAD uses a 5-nest")
	}
	if err := wl.Nest.Validate(); err != nil {
		t.Fatal(err)
	}
	wl2 := Generate(p)
	for i := range wl.Programs {
		if wl.Programs[i].ID() != wl2.Programs[i].ID() {
			t.Fatal("generation not deterministic")
		}
	}
	// Nest levels: mods vs snapshots share only level 1.
	var mod, snap model.TxnID
	for _, pr := range wl.Programs {
		if _, ok := wl.mods[pr.ID()]; ok && mod == "" {
			mod = pr.ID()
		}
		if _, ok := wl.snaps[pr.ID()]; ok && snap == "" {
			snap = pr.ID()
		}
	}
	if wl.Nest.Level(mod, snap) != 1 {
		t.Errorf("mod vs snapshot level = %d, want 1", wl.Nest.Level(mod, snap))
	}
}

func TestSerialRunInvariants(t *testing.T) {
	p := DefaultParams()
	p.Mods = 8
	p.Snapshots = 2
	wl := Generate(p)
	vals := map[model.EntityID]model.Value{}
	for k, v := range wl.Init {
		vals[k] = v
	}
	e, err := model.RunSerial(wl.Programs, vals)
	if err != nil {
		t.Fatal(err)
	}
	inv := wl.Check(e, vals)
	if !inv.TotalsConsistent {
		t.Error("serial run must leave totals consistent")
	}
	if inv.SnapshotsDirty != 0 {
		t.Errorf("%d dirty snapshots in a serial run", inv.SnapshotsDirty)
	}
	if inv.TraceValid != nil {
		t.Errorf("trace: %v", inv.TraceValid)
	}
	ok, err := coherent.MultilevelAtomic(e, wl.Nest, wl.Spec)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("serial run must be multilevel atomic")
	}
}

func TestCutCoarseness(t *testing.T) {
	wl := Generate(DefaultParams())
	var mod *Modification
	for _, m := range wl.mods {
		mod = m
		break
	}
	mk := func(label string) []model.Step {
		return []model.Step{{Txn: mod.Txn, Seq: 1, Label: label}}
	}
	if got := wl.Spec.CutAfter(mod.Txn, mk("scratch")); got != 3 {
		t.Errorf("after scratch = %d, want 3", got)
	}
	if got := wl.Spec.CutAfter(mod.Txn, mk("object")); got != 4 {
		t.Errorf("after object = %d, want 4", got)
	}
	if got := wl.Spec.CutAfter(mod.Txn, mk("total")); got != 2 {
		t.Errorf("after total = %d, want 2", got)
	}
	var snap *Snapshot
	for _, s := range wl.snaps {
		snap = s
		break
	}
	if got := wl.Spec.CutAfter(snap.Txn, mk("read")); got != 2 {
		t.Errorf("snapshot cut = %d, want 2", got)
	}
}

func TestWithDepthFlattening(t *testing.T) {
	wl := Generate(DefaultParams())
	var m1, m2same, m2diff model.TxnID
	// Find two mods of the same specialty and one of a different one.
	for id1, a := range wl.mods {
		for id2, b := range wl.mods {
			if id1 == id2 {
				continue
			}
			if a.Specialty == b.Specialty && m2same == "" {
				m1, m2same = id1, id2
			}
			if a.Specialty != b.Specialty && m2diff == "" {
				if m1 == "" {
					m1 = id1
				}
				if id1 == m1 {
					m2diff = id2
				}
			}
		}
	}
	if m1 == "" || m2same == "" {
		t.Skip("workload too small to find same-specialty mods")
	}
	for k := 2; k <= 5; k++ {
		n, spec := wl.WithDepth(k)
		if n.K() != k || spec.K() != k {
			t.Fatalf("depth %d: K mismatch", k)
		}
		if err := n.Validate(); err != nil {
			t.Fatalf("depth %d: %v", k, err)
		}
		// All mods relate at level ≥ 2 when k ≥ 3; at k=2 everything is 1.
		lv := n.Level(m1, m2same)
		switch {
		case k == 2 && lv != 1:
			t.Errorf("k=2: level = %d, want 1", lv)
		case k >= 3 && lv < 2:
			t.Errorf("k=%d: same-specialty mods level = %d, want >= 2", k, lv)
		}
		// Coarseness must be clamped to k.
		c := spec.CutAfter(m1, []model.Step{{Txn: m1, Seq: 1, Label: "object"}})
		if c > k {
			t.Errorf("k=%d: coarseness %d exceeds k", k, c)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("WithDepth(1) must panic")
		}
	}()
	wl.WithDepth(1)
}

func TestSnapshotsAccessor(t *testing.T) {
	wl := Generate(DefaultParams())
	if len(wl.Snapshots()) != wl.Params.Snapshots {
		t.Errorf("snapshots = %d", len(wl.Snapshots()))
	}
}
