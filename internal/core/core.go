// Package core is the library façade for multilevel atomicity: it pairs a
// k-nest over transactions with a k-level breakpoint specification and
// exposes the paper's correctness notions — membership in C(π,B) (multilevel
// atomicity), correctability (Theorem 2), and witness construction
// (Lemma 1) — as one coherent API. The root package mla re-exports these
// types for external users.
package core

import (
	"fmt"

	"mla/internal/breakpoint"
	"mla/internal/coherent"
	"mla/internal/model"
	"mla/internal/nest"
)

// Spec is a complete multilevel-atomicity specification: who may interleave
// with whom (the nest) and where (the breakpoints).
type Spec struct {
	Nest        *nest.Nest
	Breakpoints breakpoint.Spec
}

// NewSpec pairs a nest with a breakpoint specification, checking that they
// agree on the number of levels.
func NewSpec(n *nest.Nest, bp breakpoint.Spec) (*Spec, error) {
	if n.K() != bp.K() {
		return nil, fmt.Errorf("core: nest has k=%d but breakpoint spec has k=%d", n.K(), bp.K())
	}
	if err := n.Validate(); err != nil {
		return nil, err
	}
	return &Spec{Nest: n, Breakpoints: bp}, nil
}

// K returns the number of atomicity levels.
func (s *Spec) K() int { return s.Nest.K() }

// Check runs the full Theorem 2 analysis on an execution.
func (s *Spec) Check(e model.Execution) (*coherent.Result, error) {
	return coherent.CheckExecution(e, s.Nest, s.Breakpoints)
}

// Atomic reports whether e ∈ C(π,B): the execution is multilevel atomic as
// recorded, with no reordering.
func (s *Spec) Atomic(e model.Execution) (bool, error) {
	return coherent.MultilevelAtomic(e, s.Nest, s.Breakpoints)
}

// Correctable reports whether e is equivalent to some multilevel atomic
// execution (Theorem 2: the coherent closure of ≤e is a partial order).
func (s *Spec) Correctable(e model.Execution) (bool, error) {
	return coherent.Correctable(e, s.Nest, s.Breakpoints)
}

// Witness returns an equivalent multilevel atomic execution when e is
// correctable.
func (s *Spec) Witness(e model.Execution) (model.Execution, bool, error) {
	res, err := s.Check(e)
	if err != nil {
		return nil, false, err
	}
	w, ok := res.Witness()
	return w, ok, nil
}

// Serializability returns the k=2 specification over the given
// transactions: one universal class, singleton bottom classes, and the
// unique 2-level breakpoint description. Under this Spec, Correctable
// coincides with classical serializability (Section 4.3, first example).
func Serializability(txns []model.TxnID) *Spec {
	n := nest.New(2)
	for _, t := range txns {
		n.Add(t)
	}
	return &Spec{Nest: n, Breakpoints: breakpoint.Uniform{Levels: 2, C: 2}}
}

// CompatibilitySets returns Garcia-Molina's two-level scheme [G] as the k=3
// special case of multilevel atomicity (Section 4.3, second example):
// transactions within one compatibility class interleave arbitrarily
// (every interior boundary is a level-2 breakpoint), while transactions in
// different classes must be atomic with respect to each other.
func CompatibilitySets(classes [][]model.TxnID) *Spec {
	n := nest.New(3)
	for ci, class := range classes {
		for _, t := range class {
			n.Add(t, fmt.Sprintf("class-%d", ci))
		}
	}
	return &Spec{Nest: n, Breakpoints: breakpoint.Uniform{Levels: 3, C: 2}}
}
