package core

import (
	"testing"

	"mla/internal/breakpoint"
	"mla/internal/model"
	"mla/internal/nest"
	"mla/internal/serial"
)

func st(t model.TxnID, seq int, x model.EntityID) model.Step {
	return model.Step{Txn: t, Seq: seq, Entity: x}
}

func TestNewSpecValidates(t *testing.T) {
	n := nest.New(3)
	n.Add("t", "g")
	if _, err := NewSpec(n, breakpoint.Uniform{Levels: 2, C: 2}); err == nil {
		t.Error("k mismatch must be rejected")
	}
	if _, err := NewSpec(nest.New(3), breakpoint.Uniform{Levels: 3, C: 2}); err == nil {
		t.Error("empty nest must be rejected")
	}
	s, err := NewSpec(n, breakpoint.Uniform{Levels: 3, C: 2})
	if err != nil {
		t.Fatal(err)
	}
	if s.K() != 3 {
		t.Errorf("K = %d", s.K())
	}
}

func TestSerializabilitySpec(t *testing.T) {
	s := Serializability([]model.TxnID{"t1", "t2"})
	// Non-serializable interleaving.
	bad := model.Execution{
		st("t1", 1, "x"), st("t2", 1, "x"),
		st("t2", 2, "y"), st("t1", 2, "y"),
	}
	ok, err := s.Correctable(bad)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("k=2 spec must reject the classic cycle")
	}
	if serial.Serializable(bad) {
		t.Error("fixture error: execution should not be serializable")
	}
	good := model.Execution{
		st("t1", 1, "x"), st("t2", 1, "x"), st("t1", 2, "y"), st("t2", 2, "y"),
	}
	ok, err = s.Correctable(good)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("serializable execution must be k=2 correctable")
	}
	atomic, err := s.Atomic(good)
	if err != nil {
		t.Fatal(err)
	}
	if atomic {
		t.Error("interleaved execution is not serial, hence not 2-level atomic")
	}
	w, ok, err := s.Witness(good)
	if err != nil || !ok {
		t.Fatalf("witness: %v %v", ok, err)
	}
	if !serial.IsSerial(w) {
		t.Errorf("k=2 witness must be serial: %v", w)
	}
}

func TestCompatibilitySets(t *testing.T) {
	s := CompatibilitySets([][]model.TxnID{{"t1", "t2"}, {"t3"}})
	if s.K() != 3 {
		t.Fatalf("K = %d", s.K())
	}
	// t1 and t2 share a class: arbitrary interleaving is atomic.
	e := model.Execution{
		st("t1", 1, "x"), st("t2", 1, "x"), st("t1", 2, "x"), st("t2", 2, "x"),
	}
	atomic, err := s.Atomic(e)
	if err != nil {
		t.Fatal(err)
	}
	if !atomic {
		t.Error("same-class transactions interleave arbitrarily under [G]")
	}
	// t3 is in another class: interleaving with it must serialize.
	f := model.Execution{
		st("t1", 1, "x"), st("t3", 1, "x"), st("t1", 2, "x"), st("t3", 2, "x"),
	}
	ok, err := s.Correctable(f)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("cross-class ping-pong must not be correctable")
	}
}

func TestCheckResultFields(t *testing.T) {
	s := Serializability([]model.TxnID{"t1"})
	e := model.Execution{st("t1", 1, "x"), st("t1", 2, "y")}
	res, err := s.Check(e)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Atomic || !res.Correctable {
		t.Error("single-transaction execution is trivially atomic")
	}
	if res.Inst.N() != 2 {
		t.Errorf("instance has %d steps", res.Inst.N())
	}
	if !res.Rel.HasID(model.StepID{Txn: "t1", Seq: 1}, model.StepID{Txn: "t1", Seq: 2}) {
		t.Error("program order missing from closure")
	}
}
