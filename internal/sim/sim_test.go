package sim

import (
	"context"
	"errors"
	"testing"

	"mla/internal/bank"
	"mla/internal/breakpoint"
	"mla/internal/coherent"
	"mla/internal/model"
	"mla/internal/nest"
	"mla/internal/sched"
	"mla/internal/serial"
)

// smallWorkload: three scripted transactions with overlapping entities.
func smallWorkload() ([]model.Program, map[model.EntityID]model.Value) {
	progs := []model.Program{
		&model.Scripted{Txn: "t1", Ops: []model.Op{model.Add("x", -10), model.Add("y", 10)}},
		&model.Scripted{Txn: "t2", Ops: []model.Op{model.Add("y", -5), model.Add("z", 5)}},
		&model.Scripted{Txn: "t3", Ops: []model.Op{model.Add("z", -1), model.Add("x", 1)}},
	}
	init := map[model.EntityID]model.Value{"x": 100, "y": 100, "z": 100}
	return progs, init
}

func k2Spec(progs []model.Program) (*nest.Nest, breakpoint.Spec) {
	n := nest.New(2)
	for _, p := range progs {
		n.Add(p.ID())
	}
	return n, breakpoint.Uniform{Levels: 2, C: 2}
}

func controls(n *nest.Nest, spec breakpoint.Spec) []sched.Control {
	return []sched.Control{
		sched.NewSerial(),
		sched.NewTwoPhase(),
		sched.NewTimestamp(),
		sched.NewPreventer(n, spec),
		sched.NewDetector(n, spec),
		sched.NewNone(),
	}
}

func TestAllControlsCompleteSmallWorkload(t *testing.T) {
	progs, init := smallWorkload()
	n, spec := k2Spec(progs)
	for _, c := range controls(n, spec) {
		res, err := Run(DefaultConfig(), progs, c, spec, init)
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		if res.Stats.Committed != len(progs) {
			t.Errorf("%s: committed %d/%d", c.Name(), res.Stats.Committed, len(progs))
		}
		if err := res.Exec.Validate(init); err != nil {
			t.Errorf("%s: surviving trace invalid: %v", c.Name(), err)
		}
		// The workload is commutative increments: the final values are
		// order independent.
		want := map[model.EntityID]model.Value{"x": 91, "y": 105, "z": 104}
		for x, v := range want {
			if res.Final[x] != v {
				t.Errorf("%s: final[%s] = %d, want %d", c.Name(), x, res.Final[x], v)
			}
		}
		if res.Time <= 0 || len(res.Latencies) != len(progs) {
			t.Errorf("%s: time=%d latencies=%d", c.Name(), res.Time, len(res.Latencies))
		}
	}
}

func TestDeterminism(t *testing.T) {
	progs, init := smallWorkload()
	_, spec := k2Spec(progs)
	run := func() *Result {
		res, err := Run(DefaultConfig(), progs, sched.NewTwoPhase(), spec, init)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if len(a.Exec) != len(b.Exec) {
		t.Fatalf("different lengths: %d vs %d", len(a.Exec), len(b.Exec))
	}
	for i := range a.Exec {
		if a.Exec[i] != b.Exec[i] {
			t.Fatalf("step %d differs: %v vs %v", i, a.Exec[i], b.Exec[i])
		}
	}
	if a.Time != b.Time || a.Stats != b.Stats {
		t.Error("stats or time differ between identical runs")
	}
}

// TestBankingInvariantsPerControl is the central end-to-end test: a full
// banking workload runs under every control; every control except None must
// produce an execution that is correctable for the Section 4.2 banking
// specification and whose bank audits observe the exact total.
func TestBankingInvariantsPerControl(t *testing.T) {
	params := bank.DefaultParams()
	params.Transfers = 16
	params.BankAudits = 2
	params.CreditorAudits = 3
	for _, name := range []string{"serial", "2pl", "tso", "prevent", "detect", "none"} {
		wl := bank.Generate(params)
		var c sched.Control
		switch name {
		case "serial":
			c = sched.NewSerial()
		case "2pl":
			c = sched.NewTwoPhase()
		case "tso":
			c = sched.NewTimestamp()
		case "prevent":
			c = sched.NewPreventer(wl.Nest, wl.Spec)
		case "detect":
			c = sched.NewDetector(wl.Nest, wl.Spec)
		case "none":
			c = sched.NewNone()
		}
		res, err := Run(DefaultConfig(), wl.Programs, c, wl.Spec, wl.Init)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		inv := wl.Check(res.Exec, res.Final)
		if !inv.ConservationOK {
			t.Errorf("%s: money not conserved", name)
		}
		if inv.TraceValid != nil {
			t.Errorf("%s: trace invalid: %v", name, inv.TraceValid)
		}
		if name != "none" {
			if inv.AuditsInexact > 0 {
				t.Errorf("%s: %d bank audits saw in-transit money", name, inv.AuditsInexact)
			}
			ok, err := coherent.Correctable(res.Exec, wl.Nest, wl.Spec)
			if err != nil {
				t.Fatalf("%s: checker: %v", name, err)
			}
			if !ok {
				t.Errorf("%s: admitted a non-correctable execution", name)
			}
		}
		// Serializable controls must in fact be serializable.
		if name == "serial" || name == "2pl" || name == "tso" {
			if !serial.Serializable(res.Exec) {
				t.Errorf("%s: execution not conflict serializable", name)
			}
		}
	}
}

// TestPreventerAdmitsNonSerializable: under contention the prevention
// scheduler should produce interleavings beyond serializability while
// staying correctable — the paper's efficiency thesis in miniature.
func TestPreventerAdmitsMLAInterleavings(t *testing.T) {
	params := bank.DefaultParams()
	params.Transfers = 20
	params.Families = 2
	params.AccountsPerFamily = 3
	params.BankAudits = 1
	found := false
	for seed := int64(1); seed <= 8 && !found; seed++ {
		params.Seed = seed
		wl := bank.Generate(params)
		c := sched.NewPreventer(wl.Nest, wl.Spec)
		res, err := Run(DefaultConfig(), wl.Programs, c, wl.Spec, wl.Init)
		if err != nil {
			t.Fatal(err)
		}
		ok, err := coherent.Correctable(res.Exec, wl.Nest, wl.Spec)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("seed %d: preventer admitted a non-correctable execution", seed)
		}
		if !serial.Serializable(res.Exec) {
			found = true
		}
	}
	if !found {
		t.Log("note: no non-serializable execution arose in 8 seeds (acceptable but unexpected)")
	}
}

func TestStallBreaking(t *testing.T) {
	// Two transactions that each need the other's entity under 2PL in
	// opposite orders can deadlock only transiently thanks to wound-wait;
	// with the Preventer and a spec with no breakpoints, a genuine stall
	// occurs and must be broken.
	progs := []model.Program{
		&model.Scripted{Txn: "t1", Ops: []model.Op{model.Add("x", 1), model.Add("y", 1)}},
		&model.Scripted{Txn: "t2", Ops: []model.Op{model.Add("y", 1), model.Add("x", 1)}},
	}
	n := nest.New(2)
	n.Add("t1")
	n.Add("t2")
	spec := breakpoint.Uniform{Levels: 2, C: 2}
	cfg := DefaultConfig()
	cfg.InterArrival = 0 // simultaneous arrival maximizes conflict
	res, err := Run(cfg, progs, sched.NewPreventer(n, spec), spec, map[model.EntityID]model.Value{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Committed != 2 {
		t.Fatalf("committed %d", res.Stats.Committed)
	}
	if res.Final["x"] != 2 || res.Final["y"] != 2 {
		t.Errorf("final: %v", res.Final)
	}
}

func TestThroughputAndPercentiles(t *testing.T) {
	progs, init := smallWorkload()
	_, spec := k2Spec(progs)
	res, err := Run(DefaultConfig(), progs, sched.NewSerial(), spec, init)
	if err != nil {
		t.Fatal(err)
	}
	if res.Throughput() <= 0 {
		t.Error("throughput must be positive")
	}
	p50 := res.LatencyPercentile(50)
	p99 := res.LatencyPercentile(99)
	if p50 <= 0 || p99 < p50 {
		t.Errorf("p50=%d p99=%d", p50, p99)
	}
	empty := &Result{}
	if empty.Throughput() != 0 || empty.LatencyPercentile(50) != 0 {
		t.Error("empty result accessors must be safe")
	}
}

func TestCascadingAbortsAreClosed(t *testing.T) {
	// Timestamp ordering with tight interleaving forces aborts; the store
	// must never report an unclosed abort set (it panics via sim if so) and
	// the final state must be exact.
	progs, init := smallWorkload()
	_, spec := k2Spec(progs)
	cfg := DefaultConfig()
	cfg.InterArrival = 0
	res, err := Run(cfg, progs, sched.NewTimestamp(), spec, init)
	if err != nil {
		t.Fatal(err)
	}
	want := map[model.EntityID]model.Value{"x": 91, "y": 105, "z": 104}
	for x, v := range want {
		if res.Final[x] != v {
			t.Errorf("final[%s] = %d, want %d", x, res.Final[x], v)
		}
	}
}

func TestRunContextCancelled(t *testing.T) {
	progs, init := smallWorkload()
	n, spec := k2Spec(progs)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunContext(ctx, DefaultConfig(), progs, sched.NewPreventer(n, spec), spec, init)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	// A live context changes nothing: Run and RunContext(Background) agree.
	r1, err := Run(DefaultConfig(), progs, sched.NewPreventer(n, spec), spec, init)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunContext(context.Background(), DefaultConfig(), progs, sched.NewPreventer(n, spec), spec, init)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Time != r2.Time || r1.Stats != r2.Stats {
		t.Errorf("RunContext diverged from Run: %v vs %v", r1.Stats, r2.Stats)
	}
}
