package sim

import (
	"testing"

	"mla/internal/bank"
	"mla/internal/coherent"
	"mla/internal/sched"
)

// TestPreventerSoundnessSweep is the regression test for the retired-
// dependency hole: across many seeds, every execution admitted by the
// Preventer must be Theorem-2 correctable. (Seeds 58, 67, and 101 exposed
// cycles before committed transactions left residual obligations behind.)
func TestPreventerSoundnessSweep(t *testing.T) {
	seeds := int64(60)
	if testing.Short() {
		seeds = 12
	}
	for seed := int64(1); seed <= seeds; seed++ {
		p := bank.DefaultParams()
		p.Families = 3
		p.AccountsPerFamily = 4
		p.Transfers = 12
		p.BankAudits = 1
		p.CreditorAudits = 2
		p.Seed = seed
		wl := bank.Generate(p)
		c := sched.NewPreventer(wl.Nest, wl.Spec)
		res, err := Run(DefaultConfig(), wl.Programs, c, wl.Spec, wl.Init)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		ok, err := coherent.Correctable(res.Exec, wl.Nest, wl.Spec)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Errorf("seed %d: non-correctable execution admitted", seed)
		}
	}
}

// TestPreventerSoundnessSeed67 pins the exact configuration that exposed
// the hole.
func TestPreventerSoundnessSeed67(t *testing.T) {
	for _, seed := range []int64{58, 67, 101} {
		p := bank.DefaultParams()
		p.Families = 3
		p.AccountsPerFamily = 4
		p.Transfers = 12
		p.BankAudits = 1
		p.CreditorAudits = 2
		p.Seed = seed
		wl := bank.Generate(p)
		c := sched.NewPreventer(wl.Nest, wl.Spec)
		res, err := Run(DefaultConfig(), wl.Programs, c, wl.Spec, wl.Init)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		ok, err := coherent.Correctable(res.Exec, wl.Nest, wl.Spec)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("seed %d: regression — non-correctable execution", seed)
		}
	}
}
