// Package sim is a deterministic discrete-event simulator of the
// "migrating transaction" model the paper adopts from [RSL] (Section 6):
// entities reside at processors of a network; a transaction originates at a
// home processor and migrates from entity to entity, carrying its state in
// (p,t,s) messages; the total order of the system's execution is the order
// in which steps are actually performed, i.e. real clock time.
//
// The simulator drives a pluggable concurrency control (internal/sched),
// maintains the undo-log store (internal/storage), closes abort sets under
// value dependencies before rolling back, performs cascading restarts, and
// records the surviving execution for offline verification against
// Theorem 2 (internal/coherent).
package sim

import (
	"container/heap"
	"context"
	"fmt"
	"sort"

	"mla/internal/breakpoint"
	"mla/internal/model"
	"mla/internal/sched"
	"mla/internal/storage"
	"mla/internal/telemetry"
)

// Config sets the simulated system's shape and timing. All durations are in
// abstract time units.
type Config struct {
	Processors   int   // number of processors (entities are hashed across them)
	ServiceTime  int64 // time to perform one step
	Latency      int64 // one network hop (message between processors)
	InterArrival int64 // gap between successive transaction arrivals
	RestartDelay int64 // backoff before an aborted transaction restarts
	MaxTime      int64 // safety horizon; 0 means 100M units
	StopAt       int64 // stop cleanly at this time with work incomplete (0 = run to completion); used for crash injection

	// PartialRecovery shrinks the unit of recovery (Section 1 of the paper:
	// "one would probably not want to roll back very long transactions"):
	// when a control that supports it names a victim, the victim is rolled
	// back only to its last class-wide (coarseness-2) breakpoint and
	// resumes from there, instead of restarting from scratch. Transactions
	// that observed values written by the undone suffix still cascade to
	// full aborts. Repeated partial rollbacks without progress escalate to
	// a full abort, so deadlocks whose cause lies in the kept prefix are
	// still resolved.
	PartialRecovery bool

	// Telemetry, when non-nil, records the run into the shared sink: one
	// txn span per committed transaction (begun to commit, on its home
	// processor's lane), instants for commit groups and aborts, and the
	// sim.* / control.* counters folded in at the end. Simulated time maps
	// one unit to one microsecond in the exported trace (telemetry.SimUnit).
	// The simulator is single-threaded, so one lock-free Local suffices.
	Telemetry *telemetry.Telemetry
}

// DefaultConfig returns a small, contended configuration used by the
// examples and tests.
func DefaultConfig() Config {
	return Config{Processors: 4, ServiceTime: 10, Latency: 5, InterArrival: 3, RestartDelay: 25, MaxTime: 0}
}

// Stats aggregates what happened during a run.
type Stats struct {
	Committed   int   // transactions committed
	Steps       int64 // steps performed, including later-undone ones
	Aborts      int   // rollbacks, including cascades
	Cascades    int   // rollbacks forced by value dependencies
	StallBreaks int   // deadlock resolutions by aborting the youngest waiter
	Messages    int64 // network messages sent
	Restarts    int   // transaction attempts beyond the first

	// Unit-of-recovery accounting (Section 1 of the paper distinguishes the
	// unit of recovery from the unit of atomicity): StepsUndone counts all
	// rolled-back steps; StepsUndoneSavable counts those at or before the
	// victim's last class-wide (coarseness-2) breakpoint, which a
	// segment-granular recovery unit could have preserved.
	StepsUndone        int64
	StepsUndoneSavable int64
	PartialRollbacks   int // suffix-only rollbacks (PartialRecovery)
}

// Result of a run.
type Result struct {
	Exec      model.Execution // surviving (committed) steps in performance order
	Stats     Stats
	Control   *sched.Stats
	Time      int64   // completion time of the last commit
	Latencies []int64 // per committed transaction: begin-to-commit time
	Final     map[model.EntityID]model.Value

	// CommitGroups records the size of each atomic commit group: value
	// dependencies can cycle between finished transactions (the paper's
	// Section 6 commitment-chaining observation), and such groups must
	// commit together. Serializable controls always produce groups of 1.
	CommitGroups []int
}

// Throughput returns committed transactions per 1000 time units.
func (r *Result) Throughput() float64 {
	if r.Time == 0 {
		return 0
	}
	return float64(r.Stats.Committed) * 1000 / float64(r.Time)
}

// LatencyPercentile returns the p-th percentile (0..100) of commit latency.
func (r *Result) LatencyPercentile(p float64) int64 {
	if len(r.Latencies) == 0 {
		return 0
	}
	ls := append([]int64(nil), r.Latencies...)
	sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
	i := int(p / 100 * float64(len(ls)-1))
	return ls[i]
}

type evKind int

const (
	evArrive evKind = iota // the transaction's next step request reaches the entity's owner
	evDone                 // the current step's service time elapsed
	evBegin                // transaction (re)starts
	evTick                 // control wake-up (sched.Waker): deliver messages, run protocol timers
)

type event struct {
	time    int64
	seq     int64 // FIFO tiebreak for determinism
	kind    evKind
	txn     int // index into txns
	attempt int
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

type txnStatus int

const (
	stIdle  txnStatus = iota // not yet begun or between abort and restart
	stReady                  // request being decided / in flight
	stWaiting
	stRunning // step in service
	stFinished
	stCommitted
)

type txn struct {
	prog          model.Program
	cur           model.ProgState
	id            model.TxnID
	seq           int
	prio          int64
	begun         int64 // time of first Begin (for latency)
	attempt       int
	steps         []model.Step
	loc           int // current processor
	home          int
	status        txnStatus
	bound2        int                 // last class-wide (coarseness-2) breakpoint position
	deps          map[model.TxnID]int // uncommitted author -> max author seq observed
	states        []model.ProgState   // states[i] = program state before step i+1 (for resume)
	lastKeep      int                 // keep point of the previous partial rollback
	partialStreak int                 // consecutive partial rollbacks at the same keep point
}

type traceEntry struct {
	txn     int
	attempt int
	step    model.Step
}

// authorRef identifies the uncommitted step that wrote an entity's current
// value.
type authorRef struct {
	txn model.TxnID
	seq int
}

// Runner executes one simulation.
type Runner struct {
	cfg     Config
	control sched.Control
	caps    sched.Capabilities // the control's optional hooks, probed once
	spec    breakpoint.Spec
	store   Store
	init    map[model.EntityID]model.Value

	txns  []*txn
	byID  map[model.TxnID]int
	trace []traceEntry

	queue   eventHeap
	evSeq   int64
	now     int64
	waiters map[int]bool
	author  map[model.EntityID]authorRef // uncommitted writer of the current value

	stats        Stats
	lastCommit   int64
	latencies    []int64
	commitGroups []int

	offering     bool // reentrancy guard for offerWaiters
	offerPending bool

	wakeAt int64 // earliest queued evTick, 0 = none (sched.Waker controls)

	stallCommits  int // commit count at the last stall break
	stallEscalate int // stall breaks since the last commit

	// Telemetry recording (nil when Config.Telemetry is unset — every hook
	// is one nil check). The simulator is single-threaded, so one lock-free
	// Local carries the whole run; the run span is closed in result().
	tele    *telemetry.Local
	telePID int64
	runSpan telemetry.SpanID
}

// New prepares a run of the given programs under the control. spec provides
// the breakpoint coarseness reported to the control after each step; it may
// be nil for controls that ignore breakpoints (the baselines), in which
// case 0 is reported.
func New(cfg Config, programs []model.Program, control sched.Control, spec breakpoint.Spec, init map[model.EntityID]model.Value) *Runner {
	if cfg.Processors <= 0 {
		cfg.Processors = 1
	}
	if cfg.MaxTime == 0 {
		cfg.MaxTime = 100_000_000
	}
	r := &Runner{
		cfg:     cfg,
		control: control,
		caps:    sched.CapabilitiesOf(control),
		spec:    spec,
		store:   storage.New(init),
		init:    init,
		byID:    make(map[model.TxnID]int),
		waiters: make(map[int]bool),
		author:  make(map[model.EntityID]authorRef),
	}
	for i, p := range programs {
		t := &txn{prog: p, id: p.ID(), home: hashString(string(p.ID())) % cfg.Processors}
		t.loc = t.home
		r.txns = append(r.txns, t)
		r.byID[p.ID()] = i
		r.push(int64(i)*cfg.InterArrival, evBegin, i, 0)
	}
	if tel := cfg.Telemetry; tel != nil {
		r.tele = tel.Trace.Local()
		r.telePID = tel.Trace.NextPID()
		tel.Trace.NameProcess(r.telePID, "sim "+control.Name())
		tel.Trace.NameLane(r.telePID, 0, "run")
		for p := 0; p < cfg.Processors; p++ {
			tel.Trace.NameLane(r.telePID, int64(p)+1, fmt.Sprintf("proc %d", p))
		}
		r.runSpan = r.tele.BeginAt(0, "run", "sim run", r.telePID, 0, 0,
			"control", control.Name(), "txns", fmt.Sprint(len(programs)))
	}
	return r
}

func hashString(s string) int {
	h := 2166136261
	for i := 0; i < len(s); i++ {
		h = (h ^ int(s[i])) * 16777619 & 0x7fffffff
	}
	return h
}

func (r *Runner) owner(x model.EntityID) int {
	return hashString(string(x)) % r.cfg.Processors
}

// OwnerFunc exposes the simulator's entity-placement function so
// distributed controls can agree with it.
func OwnerFunc(processors int) func(model.EntityID) int {
	if processors <= 0 {
		processors = 1
	}
	return func(x model.EntityID) int { return hashString(string(x)) % processors }
}

func (r *Runner) push(time int64, kind evKind, ti, attempt int) {
	r.evSeq++
	heap.Push(&r.queue, event{time: time, seq: r.evSeq, kind: kind, txn: ti, attempt: attempt})
}

// Run executes the simulation to completion and returns the result. It
// returns an error if the safety horizon is exceeded or an internal
// invariant breaks (e.g. an abort set that was not dependency-closed).
func (r *Runner) Run() (*Result, error) {
	return r.RunContext(context.Background())
}

// RunContext is Run with cooperative cancellation: the context is polled
// between events (every ctxCheckEvery events, so a hot loop costs one atomic
// load per batch) and a cancelled run returns ctx.Err() wrapped with the
// simulated-time position. The simulator is single-goroutine, so unlike
// engine.Run there is nothing to join — returning is already leak-free.
func (r *Runner) RunContext(ctx context.Context) (*Result, error) {
	const ctxCheckEvery = 256
	events := 0
	for {
		if events%ctxCheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("sim: cancelled at t=%d with %d transactions incomplete: %w",
					r.now, r.incomplete(), err)
			}
		}
		events++
		if r.allCommitted() {
			break
		}
		if len(r.queue) == 0 {
			if !r.breakStall() {
				return nil, fmt.Errorf("sim: no events and no waiters but %d transactions incomplete", r.incomplete())
			}
			continue
		}
		ev := heap.Pop(&r.queue).(event)
		if r.cfg.StopAt > 0 && ev.time > r.cfg.StopAt {
			break // crash point: volatile state is abandoned
		}
		if ev.time > r.cfg.MaxTime {
			return nil, fmt.Errorf("sim: exceeded MaxTime=%d with %d transactions incomplete", r.cfg.MaxTime, r.incomplete())
		}
		r.now = ev.time
		if r.caps.Tick != nil {
			r.caps.Tick(r.now)
			// Controls with asynchronous detection (probe-based deadlock
			// chasing, failure-detector escalation) surface their victims
			// here; the rollback runs through the normal dependency-closed
			// abort path, so accounting and cascades are identical to
			// decision-time aborts.
			if r.caps.TakeVictims != nil {
				if victims := r.caps.TakeVictims(); len(victims) > 0 {
					r.abort(victims, false)
				}
			}
		}
		if ev.kind == evTick {
			if ev.time >= r.wakeAt {
				r.wakeAt = 0
			}
			// Message deliveries and timer escalations can unblock waiters
			// without any workload event, so re-offer here.
			r.offerWaiters()
			r.scheduleWake()
			continue
		}
		t := r.txns[ev.txn]
		if ev.attempt != t.attempt {
			r.scheduleWake()
			continue // stale event from a rolled-back attempt
		}
		switch ev.kind {
		case evBegin:
			t.status = stReady
			if t.begun == 0 {
				t.begun = r.now
			}
			fresh := r.now*1024 + int64(ev.txn) + 1
			if t.prio == 0 {
				t.prio = fresh
			} else if r.caps.NewPriority != nil {
				// Controls like timestamp ordering need a fresh timestamp on
				// restart; wound-wait controls keep the original so aged
				// transactions eventually win.
				t.prio = r.caps.NewPriority(t.id, t.prio, fresh)
			}
			t.cur = t.prog.Init()
			t.seq = 0
			t.bound2 = 0
			t.steps = nil
			t.states = nil
			t.deps = make(map[model.TxnID]int)
			t.lastKeep = -1
			t.loc = t.home
			r.control.Begin(t.id, t.prio)
			r.decide(ev.txn)
		case evArrive:
			r.decide(ev.txn)
		case evDone:
			r.stepDone(ev.txn)
		}
		r.scheduleWake()
	}
	return r.result(), nil
}

// scheduleWake queues a synthetic evTick at the control's next requested
// wake-up instant (sched.Waker): pending message deliveries, heartbeat and
// retransmission timers. Only the earliest wake is kept armed; stale queued
// ticks cost one idempotent Tick call and nothing else.
func (r *Runner) scheduleWake() {
	if r.caps.NextWake == nil {
		return
	}
	at := r.caps.NextWake(r.now)
	if at <= 0 {
		return
	}
	if at <= r.now {
		at = r.now + 1
	}
	if r.wakeAt > r.now && r.wakeAt <= at {
		return // an earlier-or-equal wake is already queued
	}
	r.wakeAt = at
	r.push(at, evTick, -1, 0)
}

func (r *Runner) incomplete() int {
	n := 0
	for _, t := range r.txns {
		if t.status != stCommitted {
			n++
		}
	}
	return n
}

func (r *Runner) allCommitted() bool { return r.incomplete() == 0 }

// decide asks the control about the transaction's next step and acts on the
// decision.
func (r *Runner) decide(ti int) {
	t := r.txns[ti]
	for retries := 0; ; retries++ {
		x, ok := t.cur.Next()
		if !ok {
			r.finish(ti)
			return
		}
		d := r.control.Request(t.id, t.seq+1, x)
		switch d.Kind {
		case sched.Grant:
			r.perform(ti, x)
			return
		case sched.Wait:
			t.status = stWaiting
			r.waiters[ti] = true
			return
		case sched.Abort:
			r.abort(d.Victims, false)
			if r.txns[ti].attempt != t.attempt || t.status == stIdle {
				return // we were among the victims
			}
			if retries >= 8 {
				// The control keeps demanding aborts; back off.
				t.status = stWaiting
				r.waiters[ti] = true
				return
			}
		}
	}
}

// perform executes the granted step atomically at the current instant.
func (r *Runner) perform(ti int, x model.EntityID) {
	t := r.txns[ti]
	// Migration: move to the entity's owner if not already there.
	if own := r.owner(x); own != t.loc {
		t.loc = own
		r.stats.Messages++
	}
	t.states = append(t.states, t.cur)
	var next model.ProgState
	step := r.store.Perform(t.id, t.seq+1, x, func(v model.Value) (model.Value, string) {
		w, label, ns := t.cur.Apply(v)
		next = ns
		return w, label
	})
	// Value dependency: observing a value authored by an uncommitted
	// transaction ties our fate to it.
	if a, ok := r.author[x]; ok && a.txn != t.id {
		if a.seq > t.deps[a.txn] {
			t.deps[a.txn] = a.seq
		}
	}
	if step.After != step.Before {
		r.author[x] = authorRef{txn: t.id, seq: t.seq + 1}
	}
	t.seq++
	t.cur = next
	t.steps = append(t.steps, step)
	r.trace = append(r.trace, traceEntry{txn: ti, attempt: t.attempt, step: step})
	r.stats.Steps++

	cut := 0
	if _, more := next.Next(); more && r.spec != nil {
		cut = r.spec.CutAfter(t.id, t.steps)
	}
	if cut == 2 {
		t.bound2 = t.seq
	}
	if r.tele != nil {
		// Step instants make the exported trace a replayable history for the
		// black-box checker (internal/history's Chrome importer).
		r.tele.RecordAt(telemetry.SimUnit(r.now), 0, "step",
			fmt.Sprintf("%s[%d]", t.id, t.seq), r.telePID, int64(t.home)+1, r.runSpan,
			"txn", string(t.id), "seq", fmt.Sprint(t.seq),
			"entity", string(x), "cut", fmt.Sprint(cut))
	}
	r.control.Performed(t.id, t.seq, x, cut)

	t.status = stRunning
	r.push(r.now+r.cfg.ServiceTime, evDone, ti, t.attempt)
	r.offerWaiters()
}

func (r *Runner) stepDone(ti int) {
	t := r.txns[ti]
	t.status = stReady
	if _, more := t.cur.Next(); more {
		r.push(r.now+r.cfg.Latency, evArrive, ti, t.attempt)
	} else {
		r.finish(ti)
	}
	r.offerWaiters()
}

func (r *Runner) finish(ti int) {
	t := r.txns[ti]
	if t.status == stFinished || t.status == stCommitted {
		return
	}
	t.status = stFinished
	r.stats.Messages++ // result returns to the originator
	r.control.Finished(t.id)
	r.tryCommit()
	r.offerWaiters()
}

// tryCommit commits the largest set S of finished transactions whose value
// dependencies lie within S ∪ committed. Dependencies can form cycles
// (t1 read from t2 and t2 from t1 on different entities), which is exactly
// the paper's observation that commitment under multilevel atomicity can
// chain; such groups commit together.
func (r *Runner) tryCommit() {
	inS := make(map[model.TxnID]bool)
	for _, t := range r.txns {
		if t.status == stFinished {
			inS[t.id] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for id := range inS {
			t := r.txns[r.byID[id]]
			for dep := range t.deps {
				di, ok := r.byID[dep]
				if !ok {
					continue
				}
				d := r.txns[di]
				if d.status != stCommitted && !inS[dep] {
					delete(inS, id)
					changed = true
					break
				}
			}
		}
	}
	if len(inS) == 0 {
		return
	}
	ids := make([]model.TxnID, 0, len(inS))
	for id := range inS {
		ids = append(ids, id)
	}
	model.SortTxnIDs(ids)
	r.commitGroups = append(r.commitGroups, len(ids))
	// Group members may have observed each other's values (commitment
	// chaining, paper Section 6), so a durable store must make the whole
	// group durable atomically — one log record, not one per member —
	// or a torn log tail could keep half a cycle.
	type groupCommitter interface{ CommitGroup(ids []model.TxnID) }
	if gc, ok := r.store.(groupCommitter); ok {
		gc.CommitGroup(ids)
	} else {
		for _, id := range ids {
			r.store.Commit(id)
		}
	}
	if r.tele != nil {
		joined := make([]byte, 0, 16*len(ids))
		for i, id := range ids {
			if i > 0 {
				joined = append(joined, ',')
			}
			joined = append(joined, id...)
		}
		r.tele.RecordAt(telemetry.SimUnit(r.now), 0, "commit-group",
			fmt.Sprintf("commit group (%d)", len(ids)), r.telePID, 0, r.runSpan,
			"size", fmt.Sprint(len(ids)), "txns", string(joined))
	}
	for _, id := range ids {
		t := r.txns[r.byID[id]]
		t.status = stCommitted
		r.stats.Committed++
		r.latencies = append(r.latencies, r.now-t.begun)
		if r.now > r.lastCommit {
			r.lastCommit = r.now
		}
		if r.caps.Retired != nil {
			r.caps.Retired(id)
		}
		if r.tele != nil {
			start := telemetry.SimUnit(t.begun)
			r.tele.RecordAt(start, telemetry.SimUnit(r.now)-start, "txn", string(id),
				r.telePID, int64(t.home)+1, r.runSpan,
				"attempts", fmt.Sprint(t.attempt+1), "steps", fmt.Sprint(t.seq))
		}
	}
	// Committed authors no longer create dependencies.
	for x, a := range r.author {
		if r.txns[r.byID[a.txn]].status == stCommitted {
			delete(r.author, x)
		}
	}
	for _, t := range r.txns {
		for dep := range t.deps {
			if di, ok := r.byID[dep]; ok && r.txns[di].status == stCommitted {
				delete(t.deps, dep)
			}
		}
	}
}

// abort rolls back the victims plus everything that observed their values,
// notifies the control, and schedules restarts or resumptions.
//
// With Config.PartialRecovery and a control implementing sched.PartialAborter,
// each named victim is rolled back only to its last class-wide breakpoint
// (the kept prefix stays performed and the transaction resumes from the
// saved program state) — the paper's smaller unit of recovery. Escalation:
// a victim whose previous partial rollback kept the same prefix is fully
// aborted instead, so conflicts rooted in the prefix still resolve.
// Transactions that observed values written by an undone suffix cascade to
// full aborts.
func (r *Runner) abort(victims []model.TxnID, stall bool) {
	canPartial := r.caps.AbortedTo != nil && r.cfg.PartialRecovery

	keep := make(map[model.TxnID]int) // victim -> kept seq (0 = full)
	var frontier []model.TxnID
	for _, v := range victims {
		vi, ok := r.byID[v]
		if !ok {
			continue
		}
		t := r.txns[vi]
		if t.status == stCommitted || (t.status == stIdle && t.seq == 0) {
			continue // committed, or fully rolled back already
		}
		k := 0
		if canPartial && t.status != stFinished {
			k = t.bound2
			if k > t.seq {
				k = t.seq
			}
			if k == t.seq {
				k = 0 // nothing beyond the breakpoint: a partial would be a no-op
			}
			// Escalate after repeated partial rollbacks to the same point:
			// the conflict evidently lives in the kept prefix (or keeps
			// recurring), so redo the transaction outright.
			if k > 0 && k == t.lastKeep && t.partialStreak >= 2 {
				k = 0
			}
		}
		keep[v] = k
		frontier = append(frontier, v)
	}
	// Close under value dependents of the undone suffixes: anyone who
	// observed a value authored at a seq beyond the kept prefix must fully
	// abort.
	for len(frontier) > 0 {
		var next []model.TxnID
		for _, t := range r.txns {
			if t.status == stCommitted || (t.status == stIdle && t.seq == 0) {
				continue // committed, or holds no live records
			}
			if k, hit := keep[t.id]; hit && k == 0 {
				continue // already a full victim
			}
			for _, f := range frontier {
				if d, ok := t.deps[f]; ok && d > keep[f] {
					if _, already := keep[t.id]; !already && !stall {
						r.stats.Cascades++
					}
					if k, had := keep[t.id]; !had || k > 0 {
						keep[t.id] = 0 // cascades are full aborts
						next = append(next, t.id)
					}
					break
				}
			}
		}
		frontier = next
	}
	if len(keep) == 0 {
		return
	}
	if err := r.store.AbortSuffix(keep); err != nil {
		// The dependency closure above should make this unreachable; an
		// error means a control/scheduler bug. Surface it loudly in tests
		// via the trace validation; keep running.
		panic(err)
	}
	ids := make([]model.TxnID, 0, len(keep))
	for id := range keep {
		ids = append(ids, id)
	}
	model.SortTxnIDs(ids)
	var fullIDs []model.TxnID
	rank := 0
	for _, id := range ids {
		ti := r.byID[id]
		t := r.txns[ti]
		k := keep[id]
		r.stats.StepsUndone += int64(t.seq - k)
		savable := t.bound2
		if savable > t.seq {
			savable = t.seq
		}
		if k == 0 {
			r.stats.StepsUndoneSavable += int64(savable)
			r.fullRollback(ti, rank)
			fullIDs = append(fullIDs, id)
			rank++
		} else {
			r.partialRollback(ti, k)
			r.caps.AbortedTo(id, k)
		}
		if r.tele != nil {
			kind := "full"
			if k > 0 {
				kind = "partial"
			}
			r.tele.RecordAt(telemetry.SimUnit(r.now), 0, "abort", "abort "+string(id),
				r.telePID, int64(t.home)+1, r.runSpan,
				"txn", string(id), "kind", kind, "kept", fmt.Sprint(k))
		}
	}
	if len(fullIDs) > 0 {
		r.control.Aborted(fullIDs)
	}
	r.rebuildAuthors()
	r.offerWaiters()
}

// fullRollback resets a transaction for a from-scratch restart.
func (r *Runner) fullRollback(ti, rank int) {
	t := r.txns[ti]
	t.attempt++ // invalidates in-flight events
	t.status = stIdle
	t.seq = 0
	t.steps = nil
	t.states = nil
	t.bound2 = 0
	t.lastKeep = -1
	t.partialStreak = 0
	t.deps = make(map[model.TxnID]int)
	delete(r.waiters, ti)
	r.stats.Aborts++
	r.stats.Restarts++
	// Exponential backoff with deterministic pseudo-random jitter (hashed
	// from the transaction and attempt): victims restarting at identical
	// offsets re-collide forever — the classic alternating-victim livelock
	// of restart-based controls.
	exp := t.attempt
	if exp > 4 {
		exp = 4
	}
	window := r.cfg.RestartDelay << uint(exp)
	jitter := int64(hashString(fmt.Sprintf("%s/%d", t.id, t.attempt))) % window
	delay := r.cfg.RestartDelay*(int64(rank)+1) + jitter
	r.push(r.now+delay, evBegin, ti, t.attempt)
}

// partialRollback rewinds a transaction to seq = keep: the undone suffix's
// trace entries are retagged out of the surviving execution, the program
// state is restored from the saved snapshot, and the transaction resumes
// after a short delay under the same logical identity and priority.
func (r *Runner) partialRollback(ti, keepSeq int) {
	t := r.txns[ti]
	oldAttempt := t.attempt
	t.attempt++ // invalidates in-flight events for the undone suffix
	// Re-tag the kept prefix so it survives the attempt bump.
	for i := range r.trace {
		te := &r.trace[i]
		if te.txn == ti && te.attempt == oldAttempt && te.step.Seq <= keepSeq {
			te.attempt = t.attempt
		}
	}
	t.cur = t.states[keepSeq] // state before step keepSeq+1
	t.states = t.states[:keepSeq]
	t.steps = t.steps[:keepSeq]
	t.seq = keepSeq
	if keepSeq == t.lastKeep {
		t.partialStreak++
	} else {
		t.lastKeep = keepSeq
		t.partialStreak = 1
	}
	if t.bound2 > keepSeq {
		t.bound2 = keepSeq
	}
	// Dependencies on undone suffixes of OTHER transactions cannot remain:
	// if they existed, this transaction would have cascaded to a full
	// abort. Its own deps stay valid for the kept prefix... conservatively
	// keep them (over-approximation is safe for commit ordering).
	t.status = stIdle
	delete(r.waiters, ti)
	r.stats.Aborts++
	r.stats.PartialRollbacks++
	// Backoff grows with the streak and carries deterministic jitter so
	// symmetric conflicts desynchronize instead of replaying.
	streak := t.partialStreak
	if streak > 4 {
		streak = 4
	}
	window := r.cfg.RestartDelay << uint(streak)
	jitter := int64(hashString(fmt.Sprintf("%s@%d/%d", t.id, keepSeq, t.partialStreak))) % window
	r.push(r.now+r.cfg.RestartDelay+jitter, evArrive, ti, t.attempt)
}

// rebuildAuthors recomputes, after a rollback, which uncommitted
// transaction authored each entity's current value.
func (r *Runner) rebuildAuthors() {
	r.author = make(map[model.EntityID]authorRef)
	for _, te := range r.trace {
		t := r.txns[te.txn]
		if te.attempt != t.attempt || t.status == stCommitted {
			continue
		}
		if t.status == stIdle && t.seq == 0 {
			continue // fully aborted, awaiting restart
		}
		if te.step.After != te.step.Before {
			r.author[te.step.Entity] = authorRef{txn: t.id, seq: te.step.Seq}
		}
	}
}

// offerWaiters re-presents every waiting request, oldest priority first.
// Granting a waiter can trigger further grants, aborts, or commits that
// re-enter this function; re-entrant calls just flag another pass.
func (r *Runner) offerWaiters() {
	if r.offering {
		r.offerPending = true
		return
	}
	r.offering = true
	defer func() { r.offering = false }()
	for pass := 0; ; pass++ {
		r.offerPending = false
		if len(r.waiters) == 0 {
			return
		}
		var order []int
		for ti := range r.waiters {
			order = append(order, ti)
		}
		sort.Slice(order, func(i, j int) bool {
			a, b := r.txns[order[i]], r.txns[order[j]]
			if a.prio != b.prio {
				return a.prio < b.prio
			}
			return order[i] < order[j]
		})
		for _, ti := range order {
			if !r.waiters[ti] {
				continue // aborted meanwhile
			}
			t := r.txns[ti]
			if t.status != stWaiting {
				delete(r.waiters, ti)
				continue
			}
			delete(r.waiters, ti)
			t.status = stReady
			r.decide(ti)
		}
		if !r.offerPending || pass > 4*len(r.txns) {
			return
		}
	}
}

// breakStall resolves a global stall (every live transaction is waiting) by
// aborting the youngest waiters, mirroring the paper's assumption of "some
// priority scheme and rollback mechanism to insure that no initiated
// transaction gets blocked indefinitely". Consecutive stalls with no
// intervening progress escalate: each round one more of the youngest
// waiters is sacrificed, so in the worst case only the oldest remains and
// must be able to run alone.
func (r *Runner) breakStall() bool {
	if len(r.waiters) == 0 {
		return false
	}
	if r.stats.Committed == r.stallCommits {
		r.stallEscalate++
	} else {
		r.stallEscalate = 1
		r.stallCommits = r.stats.Committed
	}
	var order []int
	for ti := range r.waiters {
		order = append(order, ti)
	}
	sort.Slice(order, func(i, j int) bool { // youngest first
		a, b := r.txns[order[i]], r.txns[order[j]]
		if a.prio != b.prio {
			return a.prio > b.prio
		}
		return order[i] > order[j]
	})
	nv := r.stallEscalate
	if nv > len(order) {
		nv = len(order)
	}
	victims := make([]model.TxnID, 0, nv)
	for _, ti := range order[:nv] {
		victims = append(victims, r.txns[ti].id)
	}
	r.stats.StallBreaks++
	r.abort(victims, true)
	return true
}

func (r *Runner) result() *Result {
	if tel := r.cfg.Telemetry; tel != nil && r.tele != nil {
		end := r.now
		if r.lastCommit > end {
			end = r.lastCommit
		}
		r.tele.Arg(r.runSpan, "committed", fmt.Sprint(r.stats.Committed))
		r.tele.EndAt(r.runSpan, telemetry.SimUnit(end))
		tel.Metrics.ObserveSnapshot("sim", r.stats)
		tel.Metrics.ObserveSnapshot("control."+r.control.Name(), r.control.Stats().Snapshot())
	}
	exec := make(model.Execution, 0, len(r.trace))
	for _, te := range r.trace {
		t := r.txns[te.txn]
		if t.status == stCommitted && te.attempt == t.attempt {
			exec = append(exec, te.step)
		}
	}
	return &Result{
		Exec:         exec,
		Stats:        r.stats,
		Control:      r.control.Stats(),
		Time:         r.lastCommit,
		Latencies:    r.latencies,
		Final:        r.store.Values(),
		CommitGroups: r.commitGroups,
	}
}

// Run is a convenience wrapper: build a Runner and run it.
func Run(cfg Config, programs []model.Program, control sched.Control, spec breakpoint.Spec, init map[model.EntityID]model.Value) (*Result, error) {
	return New(cfg, programs, control, spec, init).Run()
}

// RunContext is Run with cooperative cancellation.
func RunContext(ctx context.Context, cfg Config, programs []model.Program, control sched.Control, spec breakpoint.Spec, init map[model.EntityID]model.Value) (*Result, error) {
	return New(cfg, programs, control, spec, init).RunContext(ctx)
}
