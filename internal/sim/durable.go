package sim

import (
	"fmt"
	"sort"

	"mla/internal/breakpoint"
	"mla/internal/model"
	"mla/internal/sched"
	"mla/internal/wal"
)

// Store is the backend the simulator writes through: the volatile
// storage.Store by default, or a WAL-backed wal.DB when durability and
// crash injection are wanted.
type Store interface {
	Perform(t model.TxnID, seq int, x model.EntityID, f func(model.Value) (model.Value, string)) model.Step
	AbortSuffix(keep map[model.TxnID]int) error
	Commit(t model.TxnID)
	Values() map[model.EntityID]model.Value
}

// durableStore adapts wal.DB to the Store interface (wal's Perform returns
// an error only when stepping a committed transaction, which the simulator
// never does; a violation is a simulator bug and panics).
type durableStore struct{ db *wal.DB }

func (d durableStore) Perform(t model.TxnID, seq int, x model.EntityID, f func(model.Value) (model.Value, string)) model.Step {
	step, err := d.db.Perform(t, seq, x, f)
	if err != nil {
		panic(err)
	}
	return step
}

func (d durableStore) AbortSuffix(keep map[model.TxnID]int) error { return d.db.AbortSuffix(keep) }
func (d durableStore) Commit(t model.TxnID)                       { d.db.Commit(t) }
func (d durableStore) CommitGroup(ids []model.TxnID)              { d.db.CommitGroup(ids) }
func (d durableStore) Values() map[model.EntityID]model.Value     { return d.db.Values() }

// CrashPlan runs a workload to completion across injected crashes: the
// simulator executes until each crash time, the volatile state (schedulers,
// in-flight transactions, program states) is lost, the WAL recovers the
// committed state, and a fresh round resumes the survivors' leftovers —
// i.e. every transaction without a durable commit restarts from scratch.
type CrashPlan struct {
	Cfg     Config
	Spec    breakpoint.Spec
	Init    map[model.EntityID]model.Value
	Crashes []int64 // simulated times at which the system crashes
	// NewControl builds a fresh control per round (controls are volatile).
	NewControl func() sched.Control
}

// CrashResult aggregates a crash-recovery run.
type CrashResult struct {
	Exec      model.Execution // committed steps across all rounds, in order
	Final     map[model.EntityID]model.Value
	Rounds    int
	Committed int
	// RedoneTxns counts transaction attempts lost to crashes (in-flight at
	// a crash and restarted in a later round).
	RedoneTxns int
}

// RunWithCrashes executes the plan. Each crash is a full stop: rounds are
// separate simulations over the recovered durable state.
func RunWithCrashes(plan CrashPlan, programs []model.Program) (*CrashResult, error) {
	if plan.NewControl == nil {
		return nil, fmt.Errorf("sim: CrashPlan.NewControl is required")
	}
	medium := wal.NewMedium()
	remaining := programs
	out := &CrashResult{Final: map[model.EntityID]model.Value{}}
	crashes := append([]int64(nil), plan.Crashes...)
	sort.Slice(crashes, func(i, j int) bool { return crashes[i] < crashes[j] })

	for round := 0; ; round++ {
		if round > len(crashes)+8 {
			return nil, fmt.Errorf("sim: crash plan did not converge after %d rounds", round)
		}
		db, err := wal.Open(medium, plan.Init)
		if err != nil {
			return nil, fmt.Errorf("sim: recovery before round %d: %w", round, err)
		}
		// Drop programs whose transactions committed durably.
		var todo []model.Program
		for _, p := range remaining {
			if !db.Committed(p.ID()) {
				todo = append(todo, p)
			}
		}
		out.Rounds = round + 1
		if len(todo) == 0 {
			out.Final = db.Values()
			return out, nil
		}

		cfg := plan.Cfg
		if round < len(crashes) {
			cfg.StopAt = crashes[round]
		}
		r := New(cfg, todo, plan.NewControl(), plan.Spec, plan.Init)
		r.store = durableStore{db: db}
		// The recovered values are authoritative; reset the runner's store
		// initialization side effects are none (New built a fresh volatile
		// store we just replaced).
		res, err := r.Run()
		if err != nil {
			return nil, fmt.Errorf("sim: round %d: %w", round, err)
		}
		out.Exec = append(out.Exec, res.Exec...)
		out.Committed += res.Stats.Committed
		if round < len(crashes) {
			out.RedoneTxns += len(todo) - res.Stats.Committed
		}
		remaining = todo
		medium = db.Crash()
	}
}
