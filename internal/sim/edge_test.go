package sim

import (
	"strings"
	"testing"

	"mla/internal/breakpoint"
	"mla/internal/model"
	"mla/internal/nest"
	"mla/internal/sched"
)

func TestMaxTimeExceeded(t *testing.T) {
	// A Serial control with an absurdly small horizon cannot finish.
	progs, init := smallWorkload()
	_, spec := k2Spec(progs)
	cfg := DefaultConfig()
	cfg.MaxTime = 5
	_, err := Run(cfg, progs, sched.NewSerial(), spec, init)
	if err == nil || !strings.Contains(err.Error(), "MaxTime") {
		t.Fatalf("expected MaxTime error, got %v", err)
	}
}

func TestSingleProcessor(t *testing.T) {
	progs, init := smallWorkload()
	_, spec := k2Spec(progs)
	cfg := DefaultConfig()
	cfg.Processors = 1
	res, err := Run(cfg, progs, sched.NewTwoPhase(), spec, init)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Committed != len(progs) {
		t.Fatalf("committed %d", res.Stats.Committed)
	}
	// With one processor there are no migration hops; messages are only
	// the per-transaction completion notifications.
	if res.Stats.Messages != int64(len(progs)) {
		t.Errorf("messages = %d, want %d", res.Stats.Messages, len(progs))
	}
}

func TestZeroProcessorsDefaultsToOne(t *testing.T) {
	progs, init := smallWorkload()
	_, spec := k2Spec(progs)
	cfg := DefaultConfig()
	cfg.Processors = 0
	if _, err := Run(cfg, progs, sched.NewSerial(), spec, init); err != nil {
		t.Fatal(err)
	}
}

func TestNilSpecWithBaseline(t *testing.T) {
	// Controls that ignore breakpoints run fine without a spec.
	progs, init := smallWorkload()
	res, err := Run(DefaultConfig(), progs, sched.NewTwoPhase(), nil, init)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Committed != len(progs) {
		t.Fatalf("committed %d", res.Stats.Committed)
	}
}

func TestOwnerFunc(t *testing.T) {
	f := OwnerFunc(4)
	for _, x := range []model.EntityID{"a", "b", "acct/f01/a02"} {
		p := f(x)
		if p < 0 || p >= 4 {
			t.Errorf("owner(%s) = %d", x, p)
		}
		if f(x) != p {
			t.Error("owner not stable")
		}
	}
	if OwnerFunc(0)("x") != 0 {
		t.Error("zero processors must clamp to one")
	}
}

func TestEmptyProgramList(t *testing.T) {
	res, err := Run(DefaultConfig(), nil, sched.NewNone(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Committed != 0 || len(res.Exec) != 0 {
		t.Errorf("empty run: %+v", res.Stats)
	}
}

func TestCommitGroupsCoverCommits(t *testing.T) {
	progs, init := smallWorkload()
	n, spec := k2Spec(progs)
	res, err := Run(DefaultConfig(), progs, sched.NewDetector(n, spec), spec, init)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, g := range res.CommitGroups {
		if g < 1 {
			t.Errorf("empty commit group")
		}
		total += g
	}
	if total != res.Stats.Committed {
		t.Errorf("groups cover %d of %d", total, res.Stats.Committed)
	}
}

// TestPerStepBreakpointReporting: the control must receive the spec's
// coarseness after every non-final step and 0 after the last.
func TestPerStepBreakpointReporting(t *testing.T) {
	rec := &recordingControl{}
	progs := []model.Program{
		&model.Scripted{Txn: "t", Ops: []model.Op{model.Add("x", 1), model.Add("y", 1), model.Add("z", 1)}},
	}
	n := nest.New(3)
	n.Add("t", "g")
	spec := breakpoint.Func{Levels: 3, Fn: func(_ model.TxnID, prefix []model.Step) int {
		return 2 + len(prefix)%2 // alternating 3, 2
	}}
	_ = n
	if _, err := Run(DefaultConfig(), progs, rec, spec, nil); err != nil {
		t.Fatal(err)
	}
	want := []int{3, 2, 0}
	if len(rec.cuts) != len(want) {
		t.Fatalf("cuts = %v", rec.cuts)
	}
	for i, c := range want {
		if rec.cuts[i] != c {
			t.Errorf("cut %d = %d, want %d", i, rec.cuts[i], c)
		}
	}
}

// recordingControl grants everything and records the reported cuts.
type recordingControl struct {
	cuts  []int
	stats sched.Stats
}

func (*recordingControl) Name() string             { return "recording" }
func (*recordingControl) Begin(model.TxnID, int64) {}
func (r *recordingControl) Request(model.TxnID, int, model.EntityID) sched.Decision {
	return sched.Decision{Kind: sched.Grant}
}
func (r *recordingControl) Performed(_ model.TxnID, _ int, _ model.EntityID, cut int) {
	r.cuts = append(r.cuts, cut)
}
func (*recordingControl) Finished(model.TxnID)  {}
func (*recordingControl) Aborted([]model.TxnID) {}
func (r *recordingControl) Stats() *sched.Stats { return &r.stats }
