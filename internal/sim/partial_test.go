package sim

import (
	"testing"

	"mla/internal/bank"
	"mla/internal/coherent"
	"mla/internal/sched"
)

// runSessions executes a sessioned banking workload under the named control
// with or without partial recovery.
func runSessions(t *testing.T, name string, partial bool, length int, seed int64) (*Result, *bank.SessionWorkload) {
	t.Helper()
	p := bank.DefaultSessionParams()
	p.SessionLength = length
	p.Sessions = 6
	p.Seed = seed
	wl := bank.GenerateSessions(p)
	var c sched.Control
	switch name {
	case "prevent":
		c = sched.NewPreventer(wl.Nest, wl.Spec)
	case "detect":
		c = sched.NewDetector(wl.Nest, wl.Spec)
	case "2pl":
		c = sched.NewTwoPhase()
	}
	cfg := DefaultConfig()
	cfg.PartialRecovery = partial
	res, err := Run(cfg, wl.Programs, c, wl.Spec, wl.Init)
	if err != nil {
		t.Fatalf("%s partial=%v: %v", name, partial, err)
	}
	return res, wl
}

// TestPartialRecoveryInvariants: sessioned runs with suffix-only rollbacks
// must preserve every invariant — conservation, audit exactness, valid
// value chains — and remain Theorem-2 correctable.
func TestPartialRecoveryInvariants(t *testing.T) {
	for _, name := range []string{"prevent", "detect"} {
		for seed := int64(1); seed <= 4; seed++ {
			res, wl := runSessions(t, name, true, 4, seed)
			inv := wl.Check(res.Exec, res.Final)
			if !inv.ConservationOK {
				t.Errorf("%s seed %d: money not conserved", name, seed)
			}
			if inv.AuditsInexact > 0 {
				t.Errorf("%s seed %d: %d inexact audits", name, seed, inv.AuditsInexact)
			}
			if inv.TraceValid != nil {
				t.Errorf("%s seed %d: %v", name, seed, inv.TraceValid)
			}
			ok, err := coherent.Correctable(res.Exec, wl.Nest, wl.Spec)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Errorf("%s seed %d: non-correctable execution admitted", name, seed)
			}
		}
	}
}

// TestPartialRecoveryActuallyPartial: on a contended long-session run, some
// rollbacks must be suffix-only, and they must save work relative to the
// full-restart policy.
func TestPartialRecoveryActuallyPartial(t *testing.T) {
	var sawPartial bool
	var undoneWith, undoneWithout int64
	for seed := int64(1); seed <= 5; seed++ {
		with, _ := runSessions(t, "prevent", true, 6, seed)
		without, _ := runSessions(t, "prevent", false, 6, seed)
		if with.Stats.PartialRollbacks > 0 {
			sawPartial = true
		}
		undoneWith += with.Stats.StepsUndone
		undoneWithout += without.Stats.StepsUndone
		if without.Stats.PartialRollbacks != 0 {
			t.Error("partial rollbacks recorded with PartialRecovery disabled")
		}
	}
	if !sawPartial {
		t.Error("no partial rollbacks occurred in 5 contended runs")
	}
	if undoneWith >= undoneWithout {
		t.Errorf("partial recovery saved nothing: undone %d (partial) vs %d (full)", undoneWith, undoneWithout)
	}
}

// TestPartialRecoveryDeterministic: the discrete-event run with partial
// recovery stays deterministic.
func TestPartialRecoveryDeterministic(t *testing.T) {
	a, _ := runSessions(t, "prevent", true, 4, 9)
	b, _ := runSessions(t, "prevent", true, 4, 9)
	if len(a.Exec) != len(b.Exec) || a.Time != b.Time || a.Stats != b.Stats {
		t.Fatalf("nondeterministic: %+v vs %+v", a.Stats, b.Stats)
	}
	for i := range a.Exec {
		if a.Exec[i] != b.Exec[i] {
			t.Fatalf("step %d differs", i)
		}
	}
}

// TestPartialRecoveryIgnoredFor2PL: controls without the AbortedTo hook use
// full aborts even when the config enables partial recovery.
func TestPartialRecoveryIgnoredFor2PL(t *testing.T) {
	res, wl := runSessions(t, "2pl", true, 4, 2)
	if res.Stats.PartialRollbacks != 0 {
		t.Errorf("2PL cannot do partial rollbacks, recorded %d", res.Stats.PartialRollbacks)
	}
	inv := wl.Check(res.Exec, res.Final)
	if !inv.ConservationOK || inv.AuditsInexact > 0 || inv.TraceValid != nil {
		t.Errorf("invariants: %+v", inv)
	}
}

// TestSessionWorkloadSerialBaseline: the sessioned workload behaves under
// serial execution (multilevel atomic, invariants hold).
func TestSessionWorkloadSerialBaseline(t *testing.T) {
	res, wl := runSessions(t, "2pl", false, 3, 1)
	if res.Stats.Committed != len(wl.Programs) {
		t.Fatalf("committed %d/%d", res.Stats.Committed, len(wl.Programs))
	}
	atomicOK, err := coherent.Correctable(res.Exec, wl.Nest, wl.Spec)
	if err != nil {
		t.Fatal(err)
	}
	if !atomicOK {
		t.Error("2PL sessioned run must be correctable")
	}
}
