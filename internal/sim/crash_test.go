package sim

import (
	"testing"

	"mla/internal/bank"
	"mla/internal/coherent"
	"mla/internal/sched"
)

// TestCrashRecoveryBanking: the banking workload survives injected crashes:
// committed transfers are never redone, in-flight ones restart, and at the
// end money is conserved, audits are exact, and the stitched execution of
// committed steps is a valid, correctable history.
func TestCrashRecoveryBanking(t *testing.T) {
	params := bank.DefaultParams()
	params.Transfers = 14
	params.BankAudits = 1
	params.CreditorAudits = 1
	for _, crashes := range [][]int64{{150}, {120, 300}, {60, 140, 260}} {
		wl := bank.Generate(params)
		plan := CrashPlan{
			Cfg:     DefaultConfig(),
			Spec:    wl.Spec,
			Init:    wl.Init,
			Crashes: crashes,
			NewControl: func() sched.Control {
				return sched.NewPreventer(wl.Nest, wl.Spec)
			},
		}
		res, err := RunWithCrashes(plan, wl.Programs)
		if err != nil {
			t.Fatalf("crashes %v: %v", crashes, err)
		}
		if res.Committed != len(wl.Programs) {
			t.Fatalf("crashes %v: committed %d/%d", crashes, res.Committed, len(wl.Programs))
		}
		if res.Rounds < 2 {
			t.Errorf("crashes %v: expected multiple rounds, got %d", crashes, res.Rounds)
		}
		inv := wl.Check(res.Exec, res.Final)
		if !inv.ConservationOK {
			t.Errorf("crashes %v: money not conserved", crashes)
		}
		if inv.AuditsInexact > 0 {
			t.Errorf("crashes %v: %d inexact audits", crashes, inv.AuditsInexact)
		}
		if inv.TraceValid != nil {
			t.Errorf("crashes %v: stitched trace invalid: %v", crashes, inv.TraceValid)
		}
		ok, err := coherent.Correctable(res.Exec, wl.Nest, wl.Spec)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Errorf("crashes %v: stitched execution not correctable", crashes)
		}
	}
}

// TestCrashRecoveryNoCrashesEqualsPlainRun: an empty crash list reduces to
// a single ordinary round.
func TestCrashRecoveryNoCrashes(t *testing.T) {
	params := bank.DefaultParams()
	params.Transfers = 8
	wl := bank.Generate(params)
	plan := CrashPlan{
		Cfg:  DefaultConfig(),
		Spec: wl.Spec,
		Init: wl.Init,
		NewControl: func() sched.Control {
			return sched.NewTwoPhase()
		},
	}
	res, err := RunWithCrashes(plan, wl.Programs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 2 { // one working round + the final empty check round
		t.Errorf("rounds = %d", res.Rounds)
	}
	if res.RedoneTxns != 0 {
		t.Errorf("redone = %d without crashes", res.RedoneTxns)
	}
	inv := wl.Check(res.Exec, res.Final)
	if !inv.ConservationOK || inv.TraceValid != nil {
		t.Errorf("invariants: %+v", inv)
	}
}

// TestCrashLosesOnlyUncommitted: committed work before the crash appears in
// the stitched execution exactly once.
func TestCrashLosesOnlyUncommitted(t *testing.T) {
	params := bank.DefaultParams()
	params.Transfers = 12
	wl := bank.Generate(params)
	plan := CrashPlan{
		Cfg:     DefaultConfig(),
		Spec:    wl.Spec,
		Init:    wl.Init,
		Crashes: []int64{200},
		NewControl: func() sched.Control {
			return sched.NewTwoPhase()
		},
	}
	res, err := RunWithCrashes(plan, wl.Programs)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]int{}
	for _, s := range res.Exec {
		key := string(s.Txn)
		if s.Seq == 1 {
			seen[key]++
		}
	}
	for txn, n := range seen {
		if n != 1 {
			t.Errorf("transaction %s appears %d times in the stitched execution", txn, n)
		}
	}
	if plan.Crashes[0] > 0 && res.RedoneTxns == 0 {
		t.Log("note: nothing was in flight at the crash point (acceptable)")
	}
}

func TestCrashPlanValidation(t *testing.T) {
	if _, err := RunWithCrashes(CrashPlan{}, nil); err == nil {
		t.Fatal("missing NewControl must error")
	}
}
