package sim

import (
	"testing"

	"mla/internal/bank"
	"mla/internal/sched"
	"mla/internal/telemetry"
)

// TestSimTelemetry runs a contended banking simulation with a telemetry
// sink attached and checks the recorded view agrees with the result: one
// txn span per committed transaction (sealed, nested in the run span, on
// simulated-time microsecond coordinates), one commit-group instant per
// group, one abort instant per rollback, and the sim.* / control.*
// counters folded in.
func TestSimTelemetry(t *testing.T) {
	p := bank.DefaultParams()
	p.Transfers = 10
	p.BankAudits = 1
	p.CreditorAudits = 1
	wl := bank.Generate(p)

	tel := telemetry.New()
	cfg := DefaultConfig()
	cfg.Telemetry = tel
	res, err := Run(cfg, wl.Programs, sched.NewPreventer(wl.Nest, wl.Spec), wl.Spec, wl.Init)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Committed != len(wl.Programs) {
		t.Fatalf("committed %d/%d", res.Stats.Committed, len(wl.Programs))
	}

	var runs, txns, groups, aborts int
	var runSpan telemetry.Span
	spans := tel.Trace.Spans()
	for _, s := range spans {
		switch s.Cat {
		case "run":
			runs++
			runSpan = s
		case "txn":
			txns++
		case "commit-group":
			groups++
		case "abort":
			aborts++
		}
		if s.Args["open"] == "true" {
			t.Errorf("%s span %q left open", s.Cat, s.Name)
		}
	}
	if runs != 1 {
		t.Fatalf("run spans = %d, want 1", runs)
	}
	if txns != res.Stats.Committed {
		t.Errorf("txn spans = %d, committed = %d", txns, res.Stats.Committed)
	}
	if groups != len(res.CommitGroups) {
		t.Errorf("commit-group instants = %d, groups = %d", groups, len(res.CommitGroups))
	}
	if aborts != res.Stats.Aborts+res.Stats.PartialRollbacks {
		t.Errorf("abort instants = %d, want aborts %d + partial %d",
			aborts, res.Stats.Aborts, res.Stats.PartialRollbacks)
	}
	// Simulated-time mapping: the run span ends at SimUnit(last commit).
	if runSpan.End != telemetry.SimUnit(res.Time) {
		t.Errorf("run span ends at %d ns, want %d", runSpan.End, telemetry.SimUnit(res.Time))
	}
	for _, s := range spans {
		if s.Cat != "txn" {
			continue
		}
		if s.Parent != runSpan.ID {
			t.Errorf("txn span %q not parented to the run span", s.Name)
		}
		if s.Start < runSpan.Start || s.End > runSpan.End {
			t.Errorf("txn span %q [%d,%d] escapes the run span [%d,%d]",
				s.Name, s.Start, s.End, runSpan.Start, runSpan.End)
		}
	}
	if got := tel.Metrics.Counter("sim.committed").Value(); got != int64(res.Stats.Committed) {
		t.Errorf("sim.committed = %d, want %d", got, res.Stats.Committed)
	}
	if got := tel.Metrics.Counter("sim.steps").Value(); got != res.Stats.Steps {
		t.Errorf("sim.steps = %d, want %d", got, res.Stats.Steps)
	}
	if got := tel.Metrics.Counter("control.prevent.requests").Value(); got == 0 {
		t.Error("control counters not folded into the registry")
	}
}
