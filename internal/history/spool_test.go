package history

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mla/internal/model"
)

// writeBoot spools one boot's worth of events: each txn declares, steps
// once on its entity, and commits (except the listed pending ones).
func writeBoot(t *testing.T, path string, k int, commit []model.TxnID, pend []model.TxnID) {
	t.Helper()
	s, err := OpenSpoolFile(path, k)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range append(append([]model.TxnID(nil), commit...), pend...) {
		s.Declare(id, []string{"L2-C0"})
		s.StepPerformed(id, 1, "a", 0, 0)
	}
	for _, id := range commit {
		s.CommitGroup([]model.TxnID{id})
	}
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSpoolRoundTrip: two boots appended to one file merge into a single
// validated history whose committed set is exactly the committed events.
func TestSpoolRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "history.spool")
	writeBoot(t, path, 3, []model.TxnID{"e1-t0", "e1-t1"}, []model.TxnID{"e1-t2"})
	writeBoot(t, path, 3, []model.TxnID{"e2-t0"}, nil)

	h, err := ReadSpoolFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if h.K != 3 {
		t.Fatalf("k = %d, want 3", h.K)
	}
	if len(h.Levels) != 4 {
		t.Fatalf("%d level rows, want 4", len(h.Levels))
	}
	exec, _, err := h.Committed()
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[model.TxnID]bool)
	for _, s := range exec {
		got[s.Txn] = true
	}
	for _, id := range []model.TxnID{"e1-t0", "e1-t1", "e2-t0"} {
		if !got[id] {
			t.Fatalf("committed %s missing from replay", id)
		}
	}
	if got["e1-t2"] {
		t.Fatal("pending e1-t2 (killed mid-flight) survived replay")
	}
}

// TestSpoolTornTail: a partial final line — the write the kill landed
// inside — is dropped by the reader and healed by the next writer.
func TestSpoolTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "history.spool")
	writeBoot(t, path, 3, []model.TxnID{"e1-t0"}, nil)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Append a torn line: half of a step event, no newline.
	torn := append(raw, []byte(`{"ts":9,"kind":"step","tx`)...)
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	h, err := ReadSpoolFile(path)
	if err != nil {
		t.Fatalf("reader rejected a torn tail: %v", err)
	}
	if len(h.Events) != 2 {
		t.Fatalf("%d events, want 2 (step + commit)", len(h.Events))
	}

	// A writer reopening the file truncates the torn bytes before appending.
	writeBoot(t, path, 3, []model.TxnID{"e2-t0"}, nil)
	h2, err := ReadSpoolFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(h2.Events) != 4 {
		t.Fatalf("%d events after heal+append, want 4", len(h2.Events))
	}
}

// TestSpoolMidStreamGarbageRejected: an unparseable line FOLLOWED by more
// data is corruption, not a torn tail.
func TestSpoolMidStreamGarbageRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "history.spool")
	writeBoot(t, path, 3, []model.TxnID{"e1-t0"}, nil)
	raw, _ := os.ReadFile(path)
	bad := append(raw, []byte("not json\n{\"kind\":\"abort\",\"txn\":\"e1-t0\"}\n")...)
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSpoolFile(path); err == nil {
		t.Fatal("reader accepted mid-stream garbage")
	}
}

// TestSpoolKMismatch: reopening with a different k is refused, and so is a
// stream whose headers disagree.
func TestSpoolKMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "history.spool")
	writeBoot(t, path, 3, []model.TxnID{"e1-t0"}, nil)
	if _, err := OpenSpoolFile(path, 4); err == nil {
		t.Fatal("reopen with k=4 accepted over a k=3 spool")
	}
}

// TestSniffSpool distinguishes the two on-disk formats.
func TestSniffSpool(t *testing.T) {
	if !SniffSpool([]byte(`{"spool":"mla-history-spool/v1","k":4}` + "\n")) {
		t.Fatal("header not sniffed")
	}
	if SniffSpool([]byte(`{"format":"mla-history/v1","k":4}`)) {
		t.Fatal("native history sniffed as spool")
	}
	if SniffSpool([]byte("garbage")) {
		t.Fatal("garbage sniffed as spool")
	}
}

// TestSpoolValidateFailures: a step for an undeclared transaction fails
// validation on read.
func TestSpoolValidateFailures(t *testing.T) {
	path := filepath.Join(t.TempDir(), "history.spool")
	s, err := OpenSpoolFile(path, 3)
	if err != nil {
		t.Fatal(err)
	}
	s.StepPerformed("ghost", 1, "a", 0, 0)
	s.Close()
	if _, err := ReadSpoolFile(path); err == nil || !strings.Contains(err.Error(), "missing from the level matrix") {
		t.Fatalf("undeclared step accepted (err %v)", err)
	}
}
