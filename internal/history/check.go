package history

import (
	"fmt"
	"math/bits"
	"strings"

	"mla/internal/breakpoint"
	"mla/internal/model"
	"mla/internal/nest"
)

// Witness edge kinds.
const (
	EdgeProgram   = "program"
	EdgeConflict  = "conflict"
	EdgeCoherence = "coherence"
)

// WitnessEdge is one dependency edge of a witness cycle, with the reason it
// exists: program order within a transaction, a conflict (two accesses to
// the same entity, recorded in that order), or the coherence rule (the
// Premise pair forced every remaining step of the premise source's
// level-Level unit — the steps Unit[0]..Unit[1] of From's transaction —
// ahead of To).
type WitnessEdge struct {
	From, To model.StepID
	Kind     string
	Entity   model.EntityID  // conflict edges: the shared entity
	Level    int             // coherence edges: level(txn(From), txn(To))
	Premise  [2]model.StepID // coherence edges: the pair whose insertion fired the rule
	Unit     [2]int          // coherence edges: the B(Level) unit of From's txn (1-based seqs)
}

func (e WitnessEdge) String() string {
	switch e.Kind {
	case EdgeConflict:
		return fmt.Sprintf("%s -> %s  [conflict on %s]", e.From, e.To, e.Entity)
	case EdgeCoherence:
		return fmt.Sprintf("%s -> %s  [coherence: %s -> %s at level %d forces unit %s[%d..%d]]",
			e.From, e.To, e.Premise[0], e.Premise[1], e.Level, e.From.Txn, e.Unit[0], e.Unit[1])
	default:
		return fmt.Sprintf("%s -> %s  [program order]", e.From, e.To)
	}
}

// Witness is a minimal cycle in the generator graph of the coherent
// closure: the shortest sequence of dependency edges returning to its
// start. By Theorem 2 its existence is exactly non-correctability.
type Witness struct {
	Edges []WitnessEdge // Edges[i].To == Edges[i+1].From; the last wraps to the first
}

func (w *Witness) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "witness cycle (%d edges):\n", len(w.Edges))
	for _, e := range w.Edges {
		fmt.Fprintf(&b, "  %s\n", e)
	}
	return b.String()
}

// Report is the checker's verdict on one history.
type Report struct {
	Steps int // committed steps checked
	Txns  int // committed transactions
	K     int

	// Atomic: the recorded order itself is a coherent total order (every
	// interruption of a transaction happened at a permitted breakpoint).
	Atomic bool
	// Correctable: the coherent closure of the dependency order is acyclic
	// (Theorem 2) — some correct system execution explains the history.
	Correctable bool
	// Witness is a minimal offending cycle; non-nil exactly when
	// !Correctable.
	Witness *Witness
}

// edge is a provenance-carrying arc of the generator graph G. The checker
// maintains the invariant R = TC(G): every pair of the coherent closure is
// witnessed by a directed G-path, so R is cyclic exactly when G has a
// directed cycle — which is what lets a *minimal* witness be recovered by
// shortest-cycle search over G instead of from the closure's bitsets.
type edge struct {
	from, to int
	kind     string
	entity   model.EntityID
	level    int
	premise  [2]int
}

// checker is the working state of one Check call. It deliberately re-derives
// everything from the history — nest levels, breakpoint units, the closure —
// without calling into internal/coherent, so the two implementations can
// disagree and expose each other's bugs.
type checker struct {
	exec    model.Execution
	n       *nest.Nest
	descs   map[model.TxnID]*breakpoint.Description
	txns    []model.TxnID
	txnIdx  map[model.TxnID]int
	txnOf   []int   // global step -> txn index
	seqOf   []int   // global step -> 1-based seq
	stepsOf [][]int // txn index -> global steps in seq order
	level   [][]int // txn pair -> level

	edges   []edge
	out     [][]int // adjacency: global step -> indices into edges
	edgeSet map[[2]int]bool

	reach, pred []bitset
	cyclic      bool
}

// Check replays the history and decides multilevel atomicity of the
// committed execution against the declared level matrix and the recorded
// breakpoint descriptions. It is a black-box oracle: nothing about the
// scheduler that produced the history is trusted or consulted.
func Check(h *History) (*Report, error) {
	if err := h.Validate(); err != nil {
		return nil, err
	}
	exec, descs, err := h.Committed()
	if err != nil {
		return nil, err
	}
	n, err := h.Nest()
	if err != nil {
		return nil, err
	}
	c := &checker{exec: exec, n: n, descs: descs, txnIdx: make(map[model.TxnID]int), edgeSet: make(map[[2]int]bool)}
	c.index()
	c.baseEdges()
	c.closure()
	rep := &Report{Steps: len(exec), Txns: len(c.txns), K: h.K, Atomic: c.atomic(), Correctable: !c.cyclic}
	if c.cyclic {
		rep.Witness = c.witness()
	}
	return rep, nil
}

func (c *checker) index() {
	for _, s := range c.exec {
		if _, ok := c.txnIdx[s.Txn]; !ok {
			c.txnIdx[s.Txn] = len(c.txns)
			c.txns = append(c.txns, s.Txn)
		}
	}
	c.stepsOf = make([][]int, len(c.txns))
	c.txnOf = make([]int, len(c.exec))
	c.seqOf = make([]int, len(c.exec))
	for g, s := range c.exec {
		ti := c.txnIdx[s.Txn]
		c.txnOf[g] = ti
		c.stepsOf[ti] = append(c.stepsOf[ti], g)
		c.seqOf[g] = s.Seq
	}
	c.level = make([][]int, len(c.txns))
	for i, t := range c.txns {
		c.level[i] = make([]int, len(c.txns))
		for j, u := range c.txns {
			if i != j {
				c.level[i][j] = c.n.Level(t, u)
			}
		}
	}
	c.out = make([][]int, len(c.exec))
}

// baseEdges seeds G with the generators of the dependency order ≤e:
// program-order consecutive steps and consecutive accesses to the same
// entity (cross-transaction; within a transaction the program chain already
// implies them).
func (c *checker) baseEdges() {
	for _, idxs := range c.stepsOf {
		for i := 1; i < len(idxs); i++ {
			c.addEdge(edge{from: idxs[i-1], to: idxs[i], kind: EdgeProgram})
		}
	}
	lastEnt := make(map[model.EntityID]int)
	for g, s := range c.exec {
		if j, ok := lastEnt[s.Entity]; ok && c.txnOf[j] != c.txnOf[g] {
			c.addEdge(edge{from: j, to: g, kind: EdgeConflict, entity: s.Entity})
		}
		lastEnt[s.Entity] = g
	}
}

func (c *checker) addEdge(e edge) bool {
	key := [2]int{e.from, e.to}
	if c.edgeSet[key] {
		return false
	}
	c.edgeSet[key] = true
	c.out[e.from] = append(c.out[e.from], len(c.edges))
	c.edges = append(c.edges, e)
	return true
}

// closure computes the coherent closure R of G, growing G with the direct
// edges the coherence rule derives (each tagged with its premise pair) so
// that R = TC(G) throughout. Pairs added for transitivity alone do not
// enter G — their G-paths already exist.
func (c *checker) closure() {
	nSteps := len(c.exec)
	c.reach = make([]bitset, nSteps)
	c.pred = make([]bitset, nSteps)
	for i := range c.reach {
		c.reach[i] = newBitset(nSteps)
		c.pred[i] = newBitset(nSteps)
	}
	queue := make([][2]int, 0, 4*nSteps)
	for _, e := range c.edges {
		queue = append(queue, [2]int{e.from, e.to})
	}
	for len(queue) > 0 {
		p := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		a, b := p[0], p[1]
		if a == b {
			c.cyclic = true
			continue
		}
		if c.reach[a].has(b) {
			continue
		}
		if c.reach[b].has(a) {
			c.cyclic = true
		}
		c.reach[a].set(b)
		c.pred[b].set(a)

		// Coherence rule (b): if level(t,t′)=i and α <t α′ within one Bt(i)
		// unit, then (α,β) ∈ R forces (α′,β) ∈ R. Each forced pair becomes a
		// direct G edge with provenance, keeping R = TC(G).
		ta, tb := c.txnOf[a], c.txnOf[b]
		if ta != tb {
			lv := c.level[ta][tb]
			end := c.descs[c.txns[ta]].SegmentEnd(c.seqOf[a], lv)
			for s := c.seqOf[a] + 1; s <= end; s++ {
				g := c.stepsOf[ta][s-1]
				if c.addEdge(edge{from: g, to: b, kind: EdgeCoherence, level: lv, premise: [2]int{a, b}}) || !c.reach[g].has(b) {
					queue = append(queue, [2]int{g, b})
				}
			}
		}

		// Transitivity: pairs only, no new G edges.
		c.reach[b].andNot(c.reach[a]).forEach(func(x int) {
			queue = append(queue, [2]int{a, x})
		})
		c.pred[a].andNot(c.pred[b]).forEach(func(x int) {
			queue = append(queue, [2]int{x, b})
		})
	}
}

// atomic decides whether the recorded total order is itself coherent: every
// interruption of a transaction t by a step of t′ must fall on a boundary
// of Bt(level(t,t′)).
func (c *checker) atomic() bool {
	placed := make([]int, len(c.txns))
	for g := range c.exec {
		tb := c.txnOf[g]
		for ti := range c.txns {
			if ti == tb {
				continue
			}
			p := placed[ti]
			if p == 0 || p == len(c.stepsOf[ti]) {
				continue
			}
			if c.descs[c.txns[ti]].SameSegment(p, p+1, c.level[ti][tb]) {
				return false
			}
		}
		placed[tb]++
	}
	return true
}

// witness finds a shortest directed cycle of G by running a BFS from every
// node and keeping the best closing edge. G is small (steps + derived
// edges), so the quadratic search is cheap and the minimality guarantee —
// no shorter cycle of dependency edges exists — is worth it.
func (c *checker) witness() *Witness {
	n := len(c.exec)
	bestLen := n + 1
	var bestPath []int // edge indices, in order around the cycle
	for start := 0; start < n; start++ {
		// BFS over out-edges from start; stop when an edge returns to start.
		parentEdge := make([]int, n)
		for i := range parentEdge {
			parentEdge[i] = -1
		}
		depth := make([]int, n)
		q := []int{start}
		visited := make([]bool, n)
		visited[start] = true
		closing := -1
		for len(q) > 0 && closing < 0 {
			v := q[0]
			q = q[1:]
			if depth[v]+1 >= bestLen {
				continue
			}
			for _, ei := range c.out[v] {
				w := c.edges[ei].to
				if w == start {
					closing = ei
					break
				}
				if !visited[w] {
					visited[w] = true
					parentEdge[w] = ei
					depth[w] = depth[v] + 1
					q = append(q, w)
				}
			}
		}
		if closing < 0 {
			continue
		}
		var path []int
		for ei := closing; ei >= 0; ei = parentEdge[c.edges[ei].from] {
			path = append(path, ei)
			if c.edges[ei].from == start {
				break
			}
		}
		if len(path) < bestLen {
			bestLen = len(path)
			// Reverse into forward order around the cycle.
			bestPath = make([]int, len(path))
			for i, ei := range path {
				bestPath[len(path)-1-i] = ei
			}
		}
	}
	if bestPath == nil {
		return nil // unreachable when closure flagged a cycle; defensive
	}
	w := &Witness{}
	for _, ei := range bestPath {
		e := c.edges[ei]
		we := WitnessEdge{
			From: c.exec[e.from].ID(),
			To:   c.exec[e.to].ID(),
			Kind: e.kind,
		}
		switch e.kind {
		case EdgeConflict:
			we.Entity = e.entity
		case EdgeCoherence:
			we.Level = e.level
			we.Premise = [2]model.StepID{c.exec[e.premise[0]].ID(), c.exec[e.premise[1]].ID()}
			d := c.descs[c.exec[e.from].Txn]
			seq := c.seqOf[e.premise[0]]
			we.Unit = [2]int{d.SegmentStart(seq, e.level), d.SegmentEnd(seq, e.level)}
		}
		w.Edges = append(w.Edges, we)
	}
	return w
}

// bitset is a fixed-capacity set of small non-negative integers; a local
// copy so the checker shares no code with internal/coherent's closure.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) has(i int) bool { return b[i>>6]&(1<<uint(i&63)) != 0 }

func (b bitset) set(i int) { b[i>>6] |= 1 << uint(i&63) }

func (b bitset) andNot(other bitset) bitset {
	out := make(bitset, len(b))
	for i := range b {
		out[i] = b[i] &^ other[i]
	}
	return out
}

func (b bitset) forEach(f func(i int)) {
	for wi, w := range b {
		for w != 0 {
			f(wi<<6 + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}

// Summary renders a short human-readable verdict line.
func (r *Report) Summary() string {
	verdict := "CORRECTABLE"
	if r.Atomic {
		verdict = "ATOMIC"
	} else if !r.Correctable {
		verdict = "VIOLATION"
	}
	return fmt.Sprintf("%s: %d steps, %d txns, k=%d", verdict, r.Steps, r.Txns, r.K)
}
