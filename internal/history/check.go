package history

import (
	"fmt"
	"math/bits"
	"strings"

	"mla/internal/breakpoint"
	"mla/internal/model"
	"mla/internal/nest"
)

// Witness edge kinds.
const (
	EdgeProgram   = "program"
	EdgeConflict  = "conflict"
	EdgeCoherence = "coherence"
)

// WitnessEdge is one dependency edge of a witness cycle, with the reason it
// exists: program order within a transaction, a conflict (two accesses to
// the same entity, recorded in that order), or the coherence rule (the
// Premise pair forced every remaining step of the premise source's
// level-Level unit — the steps Unit[0]..Unit[1] of From's transaction —
// ahead of To).
type WitnessEdge struct {
	From, To model.StepID
	Kind     string
	Entity   model.EntityID  // conflict edges: the shared entity
	Level    int             // coherence edges: level(txn(From), txn(To))
	Premise  [2]model.StepID // coherence edges: the pair whose insertion fired the rule
	Unit     [2]int          // coherence edges: the B(Level) unit of From's txn (1-based seqs)
}

func (e WitnessEdge) String() string {
	switch e.Kind {
	case EdgeConflict:
		return fmt.Sprintf("%s -> %s  [conflict on %s]", e.From, e.To, e.Entity)
	case EdgeCoherence:
		return fmt.Sprintf("%s -> %s  [coherence: %s -> %s at level %d forces unit %s[%d..%d]]",
			e.From, e.To, e.Premise[0], e.Premise[1], e.Level, e.From.Txn, e.Unit[0], e.Unit[1])
	default:
		return fmt.Sprintf("%s -> %s  [program order]", e.From, e.To)
	}
}

// Witness is a minimal cycle in the generator graph of the coherent
// closure: the shortest sequence of dependency edges returning to its
// start. By Theorem 2 its existence is exactly non-correctability.
type Witness struct {
	Edges []WitnessEdge // Edges[i].To == Edges[i+1].From; the last wraps to the first
}

func (w *Witness) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "witness cycle (%d edges):\n", len(w.Edges))
	for _, e := range w.Edges {
		fmt.Fprintf(&b, "  %s\n", e)
	}
	return b.String()
}

// Report is the checker's verdict on one history.
type Report struct {
	Steps int // committed steps checked
	Txns  int // committed transactions
	K     int

	// Atomic: the recorded order itself is a coherent total order (every
	// interruption of a transaction happened at a permitted breakpoint).
	Atomic bool
	// Correctable: the coherent closure of the dependency order is acyclic
	// (Theorem 2) — some correct system execution explains the history.
	Correctable bool
	// Witness is a minimal offending cycle; non-nil exactly when
	// !Correctable.
	Witness *Witness
}

// edge is a provenance-carrying arc of the generator graph G. Base edges
// (program, conflict) are materialized; coherence-derived edges are NOT —
// a live service run yields histories where the rule would materialize
// O(txns·steps) edges (at level 1 a whole transaction is one unit, so
// every cross-family reachable pair derives an edge), which is gigabytes
// at a few thousand transactions. Derived edges are instead kept implicit
// in the closure bitsets and re-enumerated lazily by forEachSucc when a
// witness cycle must be produced.
type edge struct {
	from, to int
	kind     string
	entity   model.EntityID
	level    int
	premise  [2]int
}

// checker is the working state of one Check call. It deliberately re-derives
// everything from the history — nest levels, breakpoint units, the closure —
// without calling into internal/coherent, so the two implementations can
// disagree and expose each other's bugs.
type checker struct {
	exec    model.Execution
	n       *nest.Nest
	descs   map[model.TxnID]*breakpoint.Description
	txns    []model.TxnID
	txnIdx  map[model.TxnID]int
	txnOf   []int     // global step -> txn index
	seqOf   []int     // global step -> 1-based seq
	stepsOf [][]int   // txn index -> global steps in seq order
	level   [][]uint8 // txn pair -> level (k is tiny; uint8 keeps T² bearable)
	maxLv   int

	edges   []edge
	out     [][]int // adjacency: global step -> indices into edges
	edgeSet map[[2]int]bool

	// unitLast[lv][g] is the global index of the last step of g's B(lv)
	// unit — the one step that carries all of the unit's derived edges.
	unitLast [][]int32
	// masks[ti][lv] is the lazily-built set of steps b of other
	// transactions u with level(txns[ti], u) == lv.
	masks  [][]bitset
	reach  []bitset
	cyclic bool

	// Scratch state for ruleInto's per-transaction absorption dedup.
	tmp      bitset
	txnStamp []int
	stampGen int
}

// Check replays the history and decides multilevel atomicity of the
// committed execution against the declared level matrix and the recorded
// breakpoint descriptions. It is a black-box oracle: nothing about the
// scheduler that produced the history is trusted or consulted.
func Check(h *History) (*Report, error) {
	if err := h.Validate(); err != nil {
		return nil, err
	}
	exec, descs, err := h.Committed()
	if err != nil {
		return nil, err
	}
	n, err := h.Nest()
	if err != nil {
		return nil, err
	}
	c := &checker{exec: exec, n: n, descs: descs, txnIdx: make(map[model.TxnID]int), edgeSet: make(map[[2]int]bool)}
	c.index()
	c.baseEdges()
	c.closure()
	rep := &Report{Steps: len(exec), Txns: len(c.txns), K: h.K, Atomic: c.atomic(), Correctable: !c.cyclic}
	if c.cyclic {
		rep.Witness = c.witness()
	}
	return rep, nil
}

func (c *checker) index() {
	for _, s := range c.exec {
		if _, ok := c.txnIdx[s.Txn]; !ok {
			c.txnIdx[s.Txn] = len(c.txns)
			c.txns = append(c.txns, s.Txn)
		}
	}
	c.stepsOf = make([][]int, len(c.txns))
	c.txnOf = make([]int, len(c.exec))
	c.seqOf = make([]int, len(c.exec))
	for g, s := range c.exec {
		ti := c.txnIdx[s.Txn]
		c.txnOf[g] = ti
		c.stepsOf[ti] = append(c.stepsOf[ti], g)
		c.seqOf[g] = s.Seq
	}
	c.level = make([][]uint8, len(c.txns))
	for i, t := range c.txns {
		c.level[i] = make([]uint8, len(c.txns))
		for j, u := range c.txns {
			if i != j {
				lv := c.n.Level(t, u)
				c.level[i][j] = uint8(lv)
				if lv > c.maxLv {
					c.maxLv = lv
				}
			}
		}
	}
	c.out = make([][]int, len(c.exec))
}

// baseEdges seeds G with the generators of the dependency order ≤e:
// program-order consecutive steps and consecutive accesses to the same
// entity (cross-transaction; within a transaction the program chain already
// implies them).
func (c *checker) baseEdges() {
	for _, idxs := range c.stepsOf {
		for i := 1; i < len(idxs); i++ {
			c.addEdge(edge{from: idxs[i-1], to: idxs[i], kind: EdgeProgram})
		}
	}
	lastEnt := make(map[model.EntityID]int)
	for g, s := range c.exec {
		if j, ok := lastEnt[s.Entity]; ok && c.txnOf[j] != c.txnOf[g] {
			c.addEdge(edge{from: j, to: g, kind: EdgeConflict, entity: s.Entity})
		}
		lastEnt[s.Entity] = g
	}
}

func (c *checker) addEdge(e edge) bool {
	key := [2]int{e.from, e.to}
	if c.edgeSet[key] {
		return false
	}
	c.edgeSet[key] = true
	c.out[e.from] = append(c.out[e.from], len(c.edges))
	c.edges = append(c.edges, e)
	return true
}

// closure computes the coherent closure R as per-step reachability
// bitsets, by chaotic iteration to the least fixpoint of
//
//	reach[v] ⊇ {w} ∪ reach[w]                    for base edges v→w
//	reach[v] ⊇ (∪_{a ∈ U\{v}} reach[a]) ∩ M_lv   for v last in unit U
//
// where the second line is coherence rule (b): if level(t,t′)=i and
// α <t α′ within one Bt(i) unit, then (α,β) ∈ R forces (α′,β) ∈ R, and
// M_lv masks to the steps of transactions at level lv from t. Restricting
// the rule to the unit's LAST step derives the same closure as firing it
// for every later step s of the unit — (s,β) follows from the program
// chain s ⇝ last plus (last,β) by transitivity — while keeping derived
// work O(units·steps) instead of materializing O(txns·steps) edges.
//
// Base edges point forward in recorded order by construction, so the base
// graph is a DAG and a descending-index sweep converges base flows in one
// pass; derived flows (whose targets may precede the unit's last step)
// converge over repeated sweeps. The fixpoint stops early the moment a
// step reaches itself — the history is then uncorrectable and witness()
// extracts a concrete cycle.
func (c *checker) closure() {
	nSteps := len(c.exec)
	c.reach = make([]bitset, nSteps)
	for i := range c.reach {
		c.reach[i] = newBitset(nSteps)
	}
	c.indexUnits()
	c.masks = make([][]bitset, len(c.txns))
	c.tmp = newBitset(nSteps)
	c.txnStamp = make([]int, len(c.txns))
	scratch := newBitset(nSteps)
	for {
		changed := false
		for v := nSteps - 1; v >= 0; v-- {
			copy(scratch, c.reach[v])
			for _, ei := range c.out[v] {
				w := c.edges[ei].to
				scratch.set(w)
				scratch.or(c.reach[w])
			}
			c.ruleInto(v, scratch)
			for i, w := range scratch {
				if w != c.reach[v][i] {
					c.reach[v][i] = w
					changed = true
				}
			}
			if c.reach[v].has(v) {
				c.cyclic = true
				return
			}
		}
		if !changed {
			return
		}
	}
}

// indexUnits precomputes, per level, the global index of the last step of
// every step's unit at that level.
func (c *checker) indexUnits() {
	c.unitLast = make([][]int32, c.maxLv+1)
	for lv := 0; lv <= c.maxLv; lv++ {
		ul := make([]int32, len(c.exec))
		for ti, idxs := range c.stepsOf {
			d := c.descs[c.txns[ti]]
			for _, g := range idxs {
				ul[g] = int32(idxs[d.SegmentEnd(c.seqOf[g], lv)-1])
			}
		}
		c.unitLast[lv] = ul
	}
}

// ruleInto ORs the coherence-rule contribution for step v into acc: for
// each level lv at which v closes a non-singleton unit, the derived
// targets T = reach[first member] ∩ M_lv (the first member's reach
// subsumes every later member's via the program chain), and — because R
// is transitively closed — everything those targets reach in turn.
// Absorbing reach[b] once per target TRANSACTION suffices: within one
// transaction the earliest target's reach subsumes the later ones'.
func (c *checker) ruleInto(v int, acc bitset) {
	tv := c.txnOf[v]
	d := c.descs[c.txns[tv]]
	for lv := 0; lv <= c.maxLv; lv++ {
		if c.unitLast[lv][v] != int32(v) {
			continue
		}
		start := d.SegmentStart(c.seqOf[v], lv)
		if start == c.seqOf[v] {
			continue // singleton unit: nothing to derive
		}
		first := c.stepsOf[tv][start-1]
		mask := c.levelMask(tv, lv)
		for i := range c.tmp {
			c.tmp[i] = c.reach[first][i] & mask[i]
			acc[i] |= c.tmp[i]
		}
		c.stampGen++
		c.tmp.forEach(func(b int) {
			if tb := c.txnOf[b]; c.txnStamp[tb] != c.stampGen {
				c.txnStamp[tb] = c.stampGen
				acc.or(c.reach[b])
			}
		})
	}
}

// levelMask returns (building lazily) the set of steps of transactions u
// with level(txns[ti], u) == lv, excluding ti's own steps.
func (c *checker) levelMask(ti, lv int) bitset {
	if c.masks[ti] == nil {
		c.masks[ti] = make([]bitset, c.maxLv+1)
	}
	if m := c.masks[ti][lv]; m != nil {
		return m
	}
	m := newBitset(len(c.exec))
	for g, tg := range c.txnOf {
		if tg != ti && int(c.level[ti][tg]) == lv {
			m.set(g)
		}
	}
	c.masks[ti][lv] = m
	return m
}

// atomic decides whether the recorded total order is itself coherent: every
// interruption of a transaction t by a step of t′ must fall on a boundary
// of Bt(level(t,t′)).
func (c *checker) atomic() bool {
	placed := make([]int, len(c.txns))
	for g := range c.exec {
		tb := c.txnOf[g]
		for ti := range c.txns {
			if ti == tb {
				continue
			}
			p := placed[ti]
			if p == 0 || p == len(c.stepsOf[ti]) {
				continue
			}
			if c.descs[c.txns[ti]].SameSegment(p, p+1, int(c.level[ti][tb])) {
				return false
			}
		}
		placed[tb]++
	}
	return true
}

// forEachSucc enumerates every direct G-edge out of v: the materialized
// base edges, then the coherence-derived edges reconstructed from the
// closure — for each level at which v closes a non-singleton unit, an edge
// to every level-lv step b some earlier unit member a reaches, with (a,b)
// as the premise pair. Each derived edge produced here is a genuine edge
// of the full generator graph: a < v in the unit and (a,b) ∈ R, so the
// rule fires for v.
func (c *checker) forEachSucc(v int, yield func(edge)) {
	for _, ei := range c.out[v] {
		yield(c.edges[ei])
	}
	tv := c.txnOf[v]
	d := c.descs[c.txns[tv]]
	seen := newBitset(len(c.exec))
	diff := newBitset(len(c.exec))
	for lv := 0; lv <= c.maxLv; lv++ {
		if c.unitLast[lv][v] != int32(v) {
			continue
		}
		start := d.SegmentStart(c.seqOf[v], lv)
		if start == c.seqOf[v] {
			continue
		}
		mask := c.levelMask(tv, lv)
		for i := range seen {
			seen[i] = 0
		}
		for s := start; s < c.seqOf[v]; s++ {
			a := c.stepsOf[tv][s-1]
			for i := range diff {
				diff[i] = c.reach[a][i] & mask[i] &^ seen[i]
				seen[i] |= diff[i]
			}
			diff.forEach(func(b int) {
				yield(edge{from: v, to: b, kind: EdgeCoherence, level: lv, premise: [2]int{a, b}})
			})
		}
	}
}

// witness extracts a concrete cycle of G edges: a shortest-cycle BFS from
// every step the (possibly early-stopped) closure flagged as reaching
// itself, over base edges plus the implicit coherence edges enumerated by
// forEachSucc. Violating histories are small in practice, so the
// quadratic search and the per-edge provenance are worth it.
func (c *checker) witness() *Witness {
	n := len(c.exec)
	bestLen := n + 1
	var bestPath []edge // in order around the cycle
	parentEdge := make([]edge, n)
	parentOK := make([]bool, n)
	depth := make([]int, n)
	visited := make([]bool, n)
	for start := 0; start < n; start++ {
		if !c.reach[start].has(start) {
			continue
		}
		// BFS from start; stop when an edge returns to start.
		for i := range visited {
			visited[i] = false
			parentOK[i] = false
			depth[i] = 0
		}
		q := []int{start}
		visited[start] = true
		var closing edge
		closed := false
		for len(q) > 0 && !closed {
			v := q[0]
			q = q[1:]
			if depth[v]+1 >= bestLen {
				continue
			}
			c.forEachSucc(v, func(e edge) {
				if closed {
					return
				}
				if e.to == start {
					closing = e
					closed = true
					return
				}
				if !visited[e.to] {
					visited[e.to] = true
					parentEdge[e.to] = e
					parentOK[e.to] = true
					depth[e.to] = depth[v] + 1
					q = append(q, e.to)
				}
			})
		}
		if !closed {
			continue
		}
		path := []edge{closing}
		for v := closing.from; v != start && parentOK[v]; v = parentEdge[v].from {
			path = append(path, parentEdge[v])
		}
		if len(path) < bestLen {
			bestLen = len(path)
			// Reverse into forward order around the cycle.
			bestPath = make([]edge, len(path))
			for i, e := range path {
				bestPath[len(path)-1-i] = e
			}
		}
	}
	if bestPath == nil {
		return nil // unreachable when closure flagged a cycle; defensive
	}
	w := &Witness{}
	for _, e := range bestPath {
		we := WitnessEdge{
			From: c.exec[e.from].ID(),
			To:   c.exec[e.to].ID(),
			Kind: e.kind,
		}
		switch e.kind {
		case EdgeConflict:
			we.Entity = e.entity
		case EdgeCoherence:
			we.Level = e.level
			we.Premise = [2]model.StepID{c.exec[e.premise[0]].ID(), c.exec[e.premise[1]].ID()}
			d := c.descs[c.exec[e.from].Txn]
			seq := c.seqOf[e.premise[0]]
			we.Unit = [2]int{d.SegmentStart(seq, e.level), d.SegmentEnd(seq, e.level)}
		}
		w.Edges = append(w.Edges, we)
	}
	return w
}

// bitset is a fixed-capacity set of small non-negative integers; a local
// copy so the checker shares no code with internal/coherent's closure.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) has(i int) bool { return b[i>>6]&(1<<uint(i&63)) != 0 }

func (b bitset) set(i int) { b[i>>6] |= 1 << uint(i&63) }

func (b bitset) or(other bitset) {
	for i := range b {
		b[i] |= other[i]
	}
}

// orAnd ORs (x AND y) into b, word-wise.
func (b bitset) orAnd(x, y bitset) {
	for i := range b {
		b[i] |= x[i] & y[i]
	}
}

func (b bitset) forEach(f func(i int)) {
	for wi, w := range b {
		for w != 0 {
			f(wi<<6 + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}

// Summary renders a short human-readable verdict line.
func (r *Report) Summary() string {
	verdict := "CORRECTABLE"
	if r.Atomic {
		verdict = "ATOMIC"
	} else if !r.Correctable {
		verdict = "VIOLATION"
	}
	return fmt.Sprintf("%s: %d steps, %d txns, k=%d", verdict, r.Steps, r.Txns, r.K)
}
