package history

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"mla/internal/model"
)

// SpoolFormat identifies the append-only history spool: a JSONL stream a
// resident server writes as events happen, built so that the history of a
// process killed with SIGKILL at any instant is still checkable.
//
// The native History format (one indented JSON document) cannot be written
// incrementally — a crash mid-marshal loses everything. The spool writes
// one self-contained line per fact, each with a single write(2) call, so
// the kernel's page cache holds every acknowledged line the moment the
// call returns: process death (the soak's kill -9) loses at most a torn
// final line, which both the writer (on reopen) and the reader truncate
// away. Machine power loss is out of scope for the spool — the WAL, not
// the history, is the durability authority; the spool is the black-box
// witness used to CHECK the WAL's story.
//
// Line shapes, distinguished by their keys:
//
//	{"spool":"mla-history-spool/v1","k":4}        header (one per boot)
//	{"decl":"e3-s000017","levels":["L2-C0",...]}  level-matrix row
//	{"kind":"step","txn":...}                     an Event, verbatim
//
// A restarted server appends to the same file: repeated headers (with a
// matching k) mark boot boundaries, and ReadSpool merges the whole stream
// into one concatenated History.
const SpoolFormat = "mla-history-spool/v1"

// spoolLine is the umbrella shape every line parses into; writers use the
// dedicated shapes below so each line carries only its own keys.
type spoolLine struct {
	// Header fields.
	Spool string `json:"spool,omitempty"`
	K     int    `json:"k,omitempty"`
	// Declaration fields.
	Decl   model.TxnID `json:"decl,omitempty"`
	Levels []string    `json:"levels"`
	// Event fields (inlined so an Event line unmarshals unchanged).
	Event
}

type spoolHeader struct {
	Spool string `json:"spool"`
	K     int    `json:"k"`
}

type spoolDecl struct {
	Decl   model.TxnID `json:"decl"`
	Levels []string    `json:"levels"`
}

// Spool is the writer. It implements the engine Observer shape (pass it to
// engine.Tee next to a Recorder); Declare must be called once per
// transaction before its first step reaches the log, mirroring the level
// matrix a Recorder derives from its nest.
//
// Errors are sticky: the first failed write latches, every later call is a
// cheap no-op, and Err reports it — a history spool must never be able to
// wedge the server it observes.
type Spool struct {
	mu   sync.Mutex
	f    *os.File
	err  error
	buf  []byte
	next int64 // TS counter for this boot
}

// OpenSpoolFile opens (creating if needed) the spool at path in append
// mode, self-heals a torn final line left by a previous kill, and writes
// this boot's header. k is the level count of every history in the file;
// reopening with a different k fails.
func OpenSpoolFile(path string, k int) (*Spool, error) {
	if k < 2 {
		return nil, fmt.Errorf("history: spool k=%d out of range", k)
	}
	if raw, err := os.ReadFile(path); err == nil && len(raw) > 0 {
		if cut := int64(bytes.LastIndexByte(raw, '\n') + 1); cut < int64(len(raw)) {
			if err := os.Truncate(path, cut); err != nil {
				return nil, fmt.Errorf("history: healing torn spool tail: %w", err)
			}
		}
		// The existing stream must agree on k.
		if first := bytes.IndexByte(raw, '\n'); first > 0 {
			var hdr spoolLine
			if err := json.Unmarshal(raw[:first], &hdr); err == nil && hdr.Spool == SpoolFormat && hdr.K != k {
				return nil, fmt.Errorf("history: spool %s has k=%d, reopened with k=%d", path, hdr.K, k)
			}
		}
	} else if err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("history: %w", err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("history: %w", err)
	}
	s := &Spool{f: f}
	s.mu.Lock()
	s.writeLocked(spoolHeader{Spool: SpoolFormat, K: k})
	err = s.err
	s.mu.Unlock()
	if err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

// writeLocked marshals one line and hands it to the kernel in a single
// write. Called with s.mu held.
func (s *Spool) writeLocked(l any) {
	if s.err != nil {
		return
	}
	payload, err := json.Marshal(l)
	if err != nil {
		s.err = fmt.Errorf("history: spool encode: %w", err)
		return
	}
	s.buf = append(s.buf[:0], payload...)
	s.buf = append(s.buf, '\n')
	if _, err := s.f.Write(s.buf); err != nil {
		s.err = fmt.Errorf("history: spool write: %w", err)
	}
}

// Declare records one transaction's intermediate level labels (len k-2).
// Must precede the transaction's first step line; redeclaring is harmless
// (the reader keeps the latest).
func (s *Spool) Declare(t model.TxnID, levels []string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if levels == nil {
		levels = []string{}
	}
	s.writeLocked(spoolDecl{Decl: t, Levels: levels})
}

// event appends one Event line with this boot's monotonic TS.
func (s *Spool) event(ev Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ev.TS = s.next
	s.next++
	s.writeLocked(ev)
}

// StepPerformed implements the engine Observer shape.
func (s *Spool) StepPerformed(t model.TxnID, seq int, x model.EntityID, attempt, cut int) {
	s.event(Event{Kind: KindStep, Txn: t, Seq: seq, Entity: x, Cut: cut})
}

// TxnAborted implements the engine Observer shape (full rollback: Kept 0).
func (s *Spool) TxnAborted(t model.TxnID, cascade bool) {
	s.event(Event{Kind: KindAbort, Txn: t})
}

// CommitGroup implements the engine Observer shape. The engine fires it
// when the group forms — BEFORE the server acknowledges any member — so an
// acked transaction always has its commit line in the spool: the soak's
// lost-ack audit rests on that ordering.
func (s *Spool) CommitGroup(txns []model.TxnID) {
	s.event(Event{Kind: KindCommit, Txns: append([]model.TxnID(nil), txns...)})
}

// Crashed implements the engine Observer shape. A process kill writes
// nothing (that is the point of the format); an in-process injected crash
// leaves its victims' attempts pending, which replay discards unless they
// recommit.
func (s *Spool) Crashed(round, torn int) {}

// WaitBegin implements the engine Observer shape (not part of a history).
func (s *Spool) WaitBegin(model.TxnID, model.EntityID) {}

// WaitEnd implements the engine Observer shape (not part of a history).
func (s *Spool) WaitEnd(model.TxnID, model.EntityID, time.Duration) {}

// FaultInjected implements the engine Observer shape (no history event).
func (s *Spool) FaultInjected(model.TxnID, int, int) {}

// TxnGaveUp implements the engine Observer shape (no history event).
func (s *Spool) TxnGaveUp(model.TxnID, int) {}

// Recovered implements the engine Observer shape (not part of a history).
func (s *Spool) Recovered(int, int) {}

// RunEnded implements the engine Observer shape (not part of a history).
func (s *Spool) RunEnded(int, int, time.Duration) {}

// Err returns the latched write failure, nil while healthy.
func (s *Spool) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Close closes the file. The spool must not be used afterwards.
func (s *Spool) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return s.err
	}
	err := s.f.Close()
	s.f = nil
	if s.err == nil && err != nil {
		s.err = fmt.Errorf("history: spool close: %w", err)
	}
	return s.err
}

// SniffSpool reports whether data starts with a spool header line — how
// mlacheck distinguishes a spool from a native single-document history.
func SniffSpool(data []byte) bool {
	line := data
	if i := bytes.IndexByte(line, '\n'); i >= 0 {
		line = line[:i]
	}
	var hdr spoolLine
	return json.Unmarshal(bytes.TrimSpace(line), &hdr) == nil && hdr.Spool == SpoolFormat
}

// ReadSpool merges a spool stream — any number of boots appended to one
// file — into a single validated History. A torn final line (the process
// died mid-write) is tolerated and dropped; every complete line before it
// must parse. Repeated headers must agree on k.
func ReadSpool(r io.Reader) (*History, error) {
	h := &History{Format: Format, Levels: make(map[model.TxnID][]string)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	lineNo := 0
	var torn string // last line, if it failed to parse (candidate torn tail)
	for sc.Scan() {
		lineNo++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		if torn != "" {
			// An unparseable line followed by more data is corruption, not a
			// torn tail.
			return nil, fmt.Errorf("history: spool line %d: %s", lineNo-1, torn)
		}
		var l spoolLine
		if err := json.Unmarshal(raw, &l); err != nil {
			torn = err.Error()
			continue
		}
		switch {
		case l.Spool != "":
			if l.Spool != SpoolFormat {
				return nil, fmt.Errorf("history: spool line %d: format %q, want %q", lineNo, l.Spool, SpoolFormat)
			}
			if h.K != 0 && l.K != h.K {
				return nil, fmt.Errorf("history: spool line %d: k=%d after k=%d", lineNo, l.K, h.K)
			}
			h.K = l.K
		case l.Decl != "":
			if l.Levels == nil {
				l.Levels = []string{}
			}
			h.Levels[l.Decl] = l.Levels
		case l.Kind != "":
			if h.K == 0 {
				return nil, fmt.Errorf("history: spool line %d: event before any header", lineNo)
			}
			h.Events = append(h.Events, l.Event)
		default:
			return nil, fmt.Errorf("history: spool line %d: unrecognized shape %s", lineNo, raw)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("history: spool: %w", err)
	}
	if h.K == 0 {
		return nil, fmt.Errorf("history: spool is empty")
	}
	if err := h.Validate(); err != nil {
		return nil, err
	}
	return h, nil
}

// ReadSpoolFile reads and merges the spool at path; see ReadSpool.
func ReadSpoolFile(path string) (*History, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("history: %w", err)
	}
	defer f.Close()
	return ReadSpool(f)
}
