package history

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"mla/internal/model"
)

// ImportChrome reads the Chrome trace-event JSON that internal/telemetry
// exports and reconstructs one history per process lane that recorded step
// events (one lane per engine or simulator run; lanes without steps — a
// bus, a bench harness — are skipped).
//
// A Chrome trace does not carry the nest, so the importer assumes the
// *flat* level matrix: every pair of distinct transactions at level k-1,
// the most permissive assignment. Coherence edges shrink monotonically as
// the level rises (finer breakpoints, shorter units), so the flat closure
// is a subset of the closure under any true nest: the resulting check is a
// sound partial oracle — it never rejects a history a correct scheduler
// produced, and still catches any interleaving inside an unbroken unit
// (boundaries recorded with coarseness k, or not recorded at all, are never
// interruptible below level k). k itself is recovered as the largest
// recorded cut coarseness (minimum 2).
type ChromeRun struct {
	Name    string
	PID     int64
	History *History
}

// chromeEvent mirrors the exporter's schema (internal/telemetry/chrome.go);
// only the fields the importer consumes are declared.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"`
	PID  int64             `json:"pid"`
	TID  int64             `json:"tid"`
	Args map[string]string `json:"args"`
}

type chromeTrace struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
}

// ImportChrome parses a telemetry trace export. It returns an error for
// malformed JSON or malformed event arguments; traces with no step-bearing
// lanes return an empty slice (the caller decides whether that is an
// error).
func ImportChrome(r io.Reader) ([]ChromeRun, error) {
	var tr chromeTrace
	if err := json.NewDecoder(r).Decode(&tr); err != nil {
		return nil, fmt.Errorf("chrome import: %w", err)
	}
	procNames := make(map[int64]string)
	perPID := make(map[int64][]chromeEvent)
	var pids []int64
	for _, ev := range tr.TraceEvents {
		if ev.Ph == "M" {
			if ev.Name == "process_name" && ev.Args != nil {
				procNames[ev.PID] = ev.Args["name"]
			}
			continue
		}
		if ev.Ph != "X" && ev.Ph != "i" {
			continue
		}
		switch ev.Cat {
		case "step", "abort", "commit-group":
			if _, ok := perPID[ev.PID]; !ok {
				pids = append(pids, ev.PID)
			}
			perPID[ev.PID] = append(perPID[ev.PID], ev)
		}
	}
	sort.Slice(pids, func(i, j int) bool { return pids[i] < pids[j] })

	var runs []ChromeRun
	for _, pid := range pids {
		evs := perPID[pid]
		// The exporter emits spans sorted by (start, id): a stable sort by
		// timestamp preserves that record order across equal timestamps
		// (ns→µs division is monotone), so the array order is the run order.
		sort.SliceStable(evs, func(i, j int) bool { return evs[i].TS < evs[j].TS })
		h, err := lanesToHistory(evs)
		if err != nil {
			return nil, fmt.Errorf("chrome import: lane %d (%s): %w", pid, procNames[pid], err)
		}
		if h == nil {
			continue // no step events: not an execution lane
		}
		runs = append(runs, ChromeRun{Name: procNames[pid], PID: pid, History: h})
	}
	return runs, nil
}

func lanesToHistory(evs []chromeEvent) (*History, error) {
	maxCut := 0
	txns := make(map[model.TxnID]bool)
	steps := 0
	var events []Event
	for _, ev := range evs {
		ts := int64(ev.TS * 1e3) // back to ns; informational only
		switch ev.Cat {
		case "step":
			t, err := argTxn(ev, "txn")
			if err != nil {
				return nil, err
			}
			seq, err := argInt(ev, "seq")
			if err != nil {
				return nil, err
			}
			cut, err := argIntDefault(ev, "cut", 0)
			if err != nil {
				return nil, err
			}
			if cut > maxCut {
				maxCut = cut
			}
			txns[t] = true
			steps++
			events = append(events, Event{
				TS: ts, Kind: KindStep, Txn: t, Seq: seq,
				Entity: model.EntityID(ev.Args["entity"]), Cut: cut,
			})
		case "abort":
			t, err := argTxn(ev, "txn")
			if err != nil {
				return nil, err
			}
			kept, err := argIntDefault(ev, "kept", 0)
			if err != nil {
				return nil, err
			}
			txns[t] = true
			events = append(events, Event{TS: ts, Kind: KindAbort, Txn: t, Kept: kept})
		case "commit-group":
			raw, ok := ev.Args["txns"]
			if !ok || raw == "" {
				return nil, fmt.Errorf("commit-group event at ts %v missing txns arg", ev.TS)
			}
			var ids []model.TxnID
			for _, s := range strings.Split(raw, ",") {
				t := model.TxnID(strings.TrimSpace(s))
				if t == "" {
					return nil, fmt.Errorf("commit-group event at ts %v has empty member", ev.TS)
				}
				txns[t] = true
				ids = append(ids, t)
			}
			events = append(events, Event{TS: ts, Kind: KindCommit, Txns: ids})
		}
	}
	if steps == 0 {
		return nil, nil
	}
	k := maxCut
	if k < 2 {
		k = 2
	}
	levels := make(map[model.TxnID][]string, len(txns))
	flat := make([]string, k-2)
	for i := range flat {
		flat[i] = "shared"
	}
	for t := range txns {
		levels[t] = flat
	}
	h := &History{Format: Format, K: k, Levels: levels, Events: events}
	if err := h.Validate(); err != nil {
		return nil, err
	}
	return h, nil
}

func argTxn(ev chromeEvent, key string) (model.TxnID, error) {
	v, ok := ev.Args[key]
	if !ok || v == "" {
		return "", fmt.Errorf("%s event at ts %v missing %s arg", ev.Cat, ev.TS, key)
	}
	return model.TxnID(v), nil
}

func argInt(ev chromeEvent, key string) (int, error) {
	v, ok := ev.Args[key]
	if !ok {
		return 0, fmt.Errorf("%s event at ts %v missing %s arg", ev.Cat, ev.TS, key)
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("%s event at ts %v: bad %s arg %q", ev.Cat, ev.TS, key, v)
	}
	return n, nil
}

func argIntDefault(ev chromeEvent, key string, def int) (int, error) {
	v, ok := ev.Args[key]
	if !ok || v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("%s event at ts %v: bad %s arg %q", ev.Cat, ev.TS, key, v)
	}
	return n, nil
}
