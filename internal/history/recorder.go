package history

import (
	"sync"
	"time"

	"mla/internal/model"
	"mla/internal/nest"
)

// Recorder captures a history live from an engine run. It implements the
// engine's Observer interface structurally (so this package stays free of
// an engine dependency); pass it to engine.Tee alongside any other
// observers.
//
// The engine serializes the per-run hooks under its mutex, so most methods
// need no locking of their own; Crashed/Recovered fire from the recovery
// loop between rounds, when no workers are live. A single mutex still
// guards the event log so a Recorder is safe even if a future caller
// relaxes those guarantees, and so History() can be called concurrently
// with a run for a consistent snapshot.
type Recorder struct {
	n *nest.Nest

	mu      sync.Mutex
	events  []Event
	pending map[model.TxnID]bool // txns with a live (uncommitted) attempt
	seen    map[model.TxnID]bool
}

// NewRecorder returns a Recorder for runs over the given nest. Every
// transaction the engine reports must be present in the nest.
func NewRecorder(n *nest.Nest) *Recorder {
	return &Recorder{
		n:       n,
		pending: make(map[model.TxnID]bool),
		seen:    make(map[model.TxnID]bool),
	}
}

// StepPerformed implements the engine Observer shape.
func (r *Recorder) StepPerformed(t model.TxnID, seq int, x model.EntityID, attempt, cut int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.pending[t] = true
	r.seen[t] = true
	r.events = append(r.events, Event{
		TS: int64(len(r.events)), Kind: KindStep,
		Txn: t, Seq: seq, Entity: x, Cut: cut,
	})
}

// TxnAborted implements the engine Observer shape. Engine rollbacks are
// always full (partial rollback is a simulator feature), so Kept is 0.
func (r *Recorder) TxnAborted(t model.TxnID, cascade bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.pending, t)
	r.events = append(r.events, Event{TS: int64(len(r.events)), Kind: KindAbort, Txn: t})
}

// CommitGroup implements the engine Observer shape.
func (r *Recorder) CommitGroup(txns []model.TxnID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	ids := append([]model.TxnID(nil), txns...)
	for _, t := range ids {
		delete(r.pending, t)
	}
	r.events = append(r.events, Event{TS: int64(len(r.events)), Kind: KindCommit, Txns: ids})
}

// Crashed implements the engine Observer shape: a crash discards every live
// attempt (volatile state is gone). Transactions whose commit record the
// crash tore off the log tail are re-executed by the recovery loop, and the
// replay's last-commit-wins rule handles their reappearing steps.
func (r *Recorder) Crashed(round, torn int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	victims := make([]model.TxnID, 0, len(r.pending))
	for t := range r.pending {
		victims = append(victims, t)
	}
	model.SortTxnIDs(victims)
	for _, t := range victims {
		r.events = append(r.events, Event{TS: int64(len(r.events)), Kind: KindAbort, Txn: t})
		delete(r.pending, t)
	}
}

// WaitBegin implements the engine Observer shape (not part of a history).
func (r *Recorder) WaitBegin(model.TxnID, model.EntityID) {}

// WaitEnd implements the engine Observer shape (not part of a history).
func (r *Recorder) WaitEnd(model.TxnID, model.EntityID, time.Duration) {}

// FaultInjected implements the engine Observer shape: a transient step
// failure performs nothing, so it leaves no history event.
func (r *Recorder) FaultInjected(model.TxnID, int, int) {}

// TxnGaveUp implements the engine Observer shape: a parked transaction's
// pending steps simply never commit, which the replay already discards.
func (r *Recorder) TxnGaveUp(model.TxnID, int) {}

// Recovered implements the engine Observer shape (not part of a history).
func (r *Recorder) Recovered(int, int) {}

// RunEnded implements the engine Observer shape (not part of a history).
func (r *Recorder) RunEnded(int, int, time.Duration) {}

// History snapshots the recorded events into a checkable history. The level
// matrix covers exactly the transactions that appeared in events, labeled
// consistently from the full nest's class structure.
func (r *Recorder) History() *History {
	r.mu.Lock()
	defer r.mu.Unlock()
	txns := make([]model.TxnID, 0, len(r.seen))
	for t := range r.seen {
		txns = append(txns, t)
	}
	model.SortTxnIDs(txns)
	return &History{
		Format: Format,
		K:      r.n.K(),
		Levels: LevelPaths(r.n, txns),
		Events: append([]Event(nil), r.events...),
	}
}
