package history

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mla/internal/bank"
	"mla/internal/coherent"
	"mla/internal/model"
)

// mk builds a k=3 history of two 2-step transactions over entities x and y,
// with the given shared/distinct level-2 classes, boundary coarsenesses,
// and interleaving. t1 accesses x then y; t2 accesses y then x — the
// conflict pattern whose interleaving t1.1 t2.1 t2.2 t1.2 is the canonical
// non-serializable cross.
func mk(sameClass bool, t1cut, t2cut int, order []string) *History {
	lv := map[model.TxnID][]string{"t1": {"A"}, "t2": {"A"}}
	if !sameClass {
		lv["t2"] = []string{"B"}
	}
	h := &History{Format: Format, K: 3, Levels: lv}
	seq := map[model.TxnID]int{}
	ent := map[model.TxnID][]model.EntityID{"t1": {"x", "y"}, "t2": {"y", "x"}}
	cut := map[model.TxnID]int{"t1": t1cut, "t2": t2cut}
	for _, t := range order {
		id := model.TxnID(t)
		seq[id]++
		c := 0
		if seq[id] == 1 {
			c = cut[id]
		}
		h.Events = append(h.Events, Event{
			Kind: KindStep, Txn: id, Seq: seq[id],
			Entity: ent[id][seq[id]-1], Cut: c,
		})
	}
	h.Events = append(h.Events, Event{Kind: KindCommit, Txns: []model.TxnID{"t1", "t2"}})
	return h
}

var cross = []string{"t1", "t2", "t2", "t1"}

// TestLevelPairAcceptReject drives the same interleaving through every
// level pair and boundary shape: what the declared levels permit must be
// accepted, what they forbid must produce a witness cycle.
func TestLevelPairAcceptReject(t *testing.T) {
	cases := []struct {
		name    string
		h       *History
		correct bool
		atomic  bool
	}{
		// Same class (level 2) with coarseness-2 boundaries after each
		// first step: the cross interleaves exactly at permitted
		// breakpoints.
		{"level2-with-boundaries", mk(true, 2, 2, cross), true, true},
		// Same class but unbroken units (no cut recorded → coarseness k):
		// nobody may interrupt below level 3, and both transactions do.
		{"level2-unbroken-units", mk(true, 0, 0, cross), false, false},
		// Different classes (level 1): boundaries exist but B(1) never
		// cuts — the pair requires mutual serializability it doesn't have.
		{"level1-with-boundaries", mk(false, 2, 2, cross), false, false},
		// Different classes, serial order: always fine.
		{"level1-serial", mk(false, 0, 0, []string{"t1", "t1", "t2", "t2"}), true, true},
		// Coarseness-3 boundaries are cut only in B(3); at level 2 they do
		// not license the interruption.
		{"level2-coarse3-boundaries", mk(true, 3, 3, cross), false, false},
		// Mixed boundary coarseness: in the cross only t1 is interrupted,
		// at its coarseness-2 cut, while t2 runs contiguously — t2's
		// unbroken unit never matters, so this is atomic as recorded.
		{"level2-mixed-boundaries", mk(true, 2, 3, cross), true, true},
		// Same shape with t2's boundary unrecorded (defaults to k).
		{"level2-one-sided", mk(true, 2, 0, cross), true, true},
		// Correctable but not atomic: t1 interrupts UNBROKEN t2 mid-unit,
		// so the recorded order violates — but coherence only forces
		// t2.2 -> t1.2, and the order t1.1 t2.1 t2.2 t1.2 satisfies every
		// constraint, so reordering can fix it (Theorem 2's <=e case).
		{"level2-correctable-not-atomic", mk(true, 2, 0, []string{"t2", "t1", "t1", "t2"}), true, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rep, err := Check(tc.h)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Correctable != tc.correct {
				t.Errorf("correctable = %v, want %v", rep.Correctable, tc.correct)
			}
			if rep.Atomic != tc.atomic {
				t.Errorf("atomic = %v, want %v", rep.Atomic, tc.atomic)
			}
			if !tc.correct && rep.Witness == nil {
				t.Error("violation reported without a witness cycle")
			}
			if tc.correct && rep.Witness != nil {
				t.Error("correctable history carries a witness cycle")
			}
			// Cross-examine against the Theorem 2 machinery.
			exec, _, err := tc.h.Committed()
			if err != nil {
				t.Fatal(err)
			}
			n, err := tc.h.Nest()
			if err != nil {
				t.Fatal(err)
			}
			h2, err := FromExecution(exec, n, specOf(t, tc.h))
			if err != nil {
				t.Fatal(err)
			}
			res, err := coherent.CheckExecution(exec, n, specOf(t, h2))
			if err != nil {
				t.Fatal(err)
			}
			if res.Correctable != rep.Correctable || res.Atomic != rep.Atomic {
				t.Errorf("checker disagrees with coherent: (%v,%v) vs (%v,%v)",
					rep.Atomic, rep.Correctable, res.Atomic, res.Correctable)
			}
		})
	}
}

// specOf materializes a history's recorded cuts as a breakpoint.Spec for
// the coherent cross-check.
func specOf(t *testing.T, h *History) replaySpec {
	t.Helper()
	cuts := make(map[model.TxnID][]int)
	for _, ev := range h.Events {
		if ev.Kind == KindStep {
			cuts[ev.Txn] = append(cuts[ev.Txn], ev.Cut)
		}
	}
	return replaySpec{k: h.K, cuts: cuts}
}

type replaySpec struct {
	k    int
	cuts map[model.TxnID][]int
}

func (s replaySpec) K() int { return s.k }

func (s replaySpec) CutAfter(t model.TxnID, prefix []model.Step) int {
	cs := s.cuts[t]
	i := len(prefix) - 1
	if i < 0 || i >= len(cs) || cs[i] == 0 {
		return s.k
	}
	return cs[i]
}

func TestWitnessIsClosedCycle(t *testing.T) {
	rep, err := Check(mk(true, 0, 0, cross))
	if err != nil {
		t.Fatal(err)
	}
	w := rep.Witness
	if w == nil || len(w.Edges) < 2 {
		t.Fatalf("want a cycle of >= 2 edges, got %+v", w)
	}
	for i, e := range w.Edges {
		next := w.Edges[(i+1)%len(w.Edges)]
		if e.To != next.From {
			t.Errorf("edge %d ends at %s but edge %d starts at %s", i, e.To, i+1, next.From)
		}
		switch e.Kind {
		case EdgeProgram, EdgeConflict, EdgeCoherence:
		default:
			t.Errorf("edge %d has unknown kind %q", i, e.Kind)
		}
	}
	if s := w.String(); !strings.Contains(s, "witness cycle") {
		t.Errorf("witness rendering: %q", s)
	}
}

// TestReplaySemantics: aborted attempts vanish, partial rollbacks keep the
// prefix, torn-commit redo demotes and recommits, implicit restarts reset.
func TestReplaySemantics(t *testing.T) {
	lv := map[model.TxnID][]string{"t1": nil, "t2": nil}
	step := func(tx string, seq int, x string) Event {
		return Event{Kind: KindStep, Txn: model.TxnID(tx), Seq: seq, Entity: model.EntityID(x)}
	}
	commit := func(txs ...string) Event {
		ids := make([]model.TxnID, len(txs))
		for i, s := range txs {
			ids[i] = model.TxnID(s)
		}
		return Event{Kind: KindCommit, Txns: ids}
	}

	t.Run("aborted attempt dropped", func(t *testing.T) {
		h := &History{Format: Format, K: 2, Levels: lv, Events: []Event{
			step("t1", 1, "x"), step("t1", 2, "y"),
			{Kind: KindAbort, Txn: "t1"},
			step("t1", 1, "x"), step("t1", 2, "y"),
			commit("t1"),
		}}
		exec, _, err := h.Committed()
		if err != nil {
			t.Fatal(err)
		}
		if len(exec) != 2 || exec[0].Seq != 1 || exec[1].Seq != 2 {
			t.Fatalf("committed = %v", exec)
		}
	})

	t.Run("partial rollback keeps prefix", func(t *testing.T) {
		h := &History{Format: Format, K: 2, Levels: lv, Events: []Event{
			step("t1", 1, "x"), step("t1", 2, "y"), step("t1", 3, "z"),
			{Kind: KindAbort, Txn: "t1", Kept: 1},
			step("t1", 2, "y"), step("t1", 3, "z"),
			commit("t1"),
		}}
		exec, _, err := h.Committed()
		if err != nil {
			t.Fatal(err)
		}
		if len(exec) != 3 {
			t.Fatalf("committed %d steps, want 3", len(exec))
		}
		if exec[0].Seq != 1 || exec[1].Seq != 2 || exec[2].Seq != 3 {
			t.Fatalf("seqs = %v", exec)
		}
	})

	t.Run("torn commit redo", func(t *testing.T) {
		h := &History{Format: Format, K: 2, Levels: lv, Events: []Event{
			step("t1", 1, "x"), commit("t1"),
			// Crash tore the commit record; recovery re-runs t1.
			step("t1", 1, "x"), commit("t1"),
		}}
		exec, _, err := h.Committed()
		if err != nil {
			t.Fatal(err)
		}
		if len(exec) != 1 {
			t.Fatalf("committed %d steps, want 1 (last commit wins)", len(exec))
		}
	})

	t.Run("implicit restart", func(t *testing.T) {
		h := &History{Format: Format, K: 2, Levels: lv, Events: []Event{
			step("t1", 1, "x"), step("t1", 2, "y"),
			step("t1", 1, "x"), step("t1", 2, "y"), // seq 1 again: restart
			commit("t1"),
		}}
		exec, _, err := h.Committed()
		if err != nil {
			t.Fatal(err)
		}
		if len(exec) != 2 {
			t.Fatalf("committed %d steps, want 2", len(exec))
		}
	})

	t.Run("seq gap rejected", func(t *testing.T) {
		h := &History{Format: Format, K: 2, Levels: lv, Events: []Event{
			step("t1", 1, "x"), step("t1", 3, "y"),
		}}
		if _, _, err := h.Committed(); err == nil {
			t.Fatal("want error for seq gap")
		}
	})

	t.Run("double commit rejected", func(t *testing.T) {
		h := &History{Format: Format, K: 2, Levels: lv, Events: []Event{
			step("t1", 1, "x"), commit("t1"), commit("t1"),
		}}
		if _, _, err := h.Committed(); err == nil {
			t.Fatal("want error for double commit")
		}
	})

	t.Run("abort keeping too much rejected", func(t *testing.T) {
		h := &History{Format: Format, K: 2, Levels: lv, Events: []Event{
			step("t1", 1, "x"), {Kind: KindAbort, Txn: "t1", Kept: 5},
		}}
		if _, _, err := h.Committed(); err == nil {
			t.Fatal("want error for over-keeping abort")
		}
	})
}

func TestValidateErrors(t *testing.T) {
	base := func() *History {
		return &History{Format: Format, K: 3,
			Levels: map[model.TxnID][]string{"t1": {"A"}},
			Events: []Event{{Kind: KindStep, Txn: "t1", Seq: 1, Entity: "x"}},
		}
	}
	cases := []struct {
		name string
		mut  func(*History)
	}{
		{"bad format", func(h *History) { h.Format = "bogus" }},
		{"bad k", func(h *History) { h.K = 1 }},
		{"wrong label count", func(h *History) { h.Levels["t1"] = []string{"A", "B"} }},
		{"unknown kind", func(h *History) { h.Events[0].Kind = "mystery" }},
		{"cut out of range", func(h *History) { h.Events[0].Cut = 7 }},
		{"unknown txn", func(h *History) { h.Events[0].Txn = "ghost" }},
		{"zero seq", func(h *History) { h.Events[0].Seq = 0 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := base()
			tc.mut(h)
			if err := h.Validate(); err == nil {
				t.Fatal("want validation error")
			}
		})
	}
	if err := base().Validate(); err != nil {
		t.Fatalf("baseline history invalid: %v", err)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	h := mk(true, 2, 2, cross)
	var buf bytes.Buffer
	if err := h.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.K != h.K || len(got.Events) != len(h.Events) || len(got.Levels) != len(h.Levels) {
		t.Fatalf("round trip mangled the history: %+v", got)
	}
	if _, err := Decode(strings.NewReader("{not json")); err == nil {
		t.Fatal("want error for malformed JSON")
	}
}

// TestFromExecutionMatchesCoherent: across many random interleavings of a
// real banking workload, the black-box verdict must agree with the
// Theorem 2 machinery fed the same execution directly.
func TestFromExecutionMatchesCoherent(t *testing.T) {
	p := bank.DefaultParams()
	p.Families = 2
	p.AccountsPerFamily = 3
	p.Transfers = 5
	p.BankAudits = 1
	p.CreditorAudits = 1
	wl := bank.Generate(p)
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		vals := make(map[model.EntityID]model.Value, len(wl.Init))
		for k, v := range wl.Init {
			vals[k] = v
		}
		exec, err := model.RandomInterleave(wl.Programs, vals, rng)
		if err != nil {
			t.Fatal(err)
		}
		n := wl.Nest.Restrict(exec.Txns())
		h, err := FromExecution(exec, n, wl.Spec)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Check(h)
		if err != nil {
			t.Fatal(err)
		}
		res, err := coherent.CheckExecution(exec, n, wl.Spec)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Atomic != res.Atomic || rep.Correctable != res.Correctable {
			t.Errorf("seed %d: history says (%v,%v), coherent says (%v,%v)",
				seed, rep.Atomic, rep.Correctable, res.Atomic, res.Correctable)
		}
		if !rep.Correctable && rep.Witness == nil {
			t.Errorf("seed %d: violation without witness", seed)
		}
	}
}

// TestTestdataViolations: every hand-crafted violating history under
// testdata must decode and be rejected with a witness; the accepting one
// must pass.
func TestTestdataViolations(t *testing.T) {
	bad, err := filepath.Glob("testdata/violation_*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) < 3 {
		t.Fatalf("want >= 3 violating testdata histories, found %d", len(bad))
	}
	for _, path := range bad {
		t.Run(filepath.Base(path), func(t *testing.T) {
			f, err := os.Open(path)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			h, err := Decode(f)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := Check(h)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Correctable {
				t.Fatal("violating history accepted")
			}
			if rep.Witness == nil || len(rep.Witness.Edges) == 0 {
				t.Fatal("no witness cycle emitted")
			}
		})
	}
	f, err := os.Open("testdata/accept_mixed.json")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	h, err := Decode(f)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Check(h)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Correctable {
		t.Fatalf("accepting history rejected: %v", rep.Witness)
	}
}
