package history

import (
	"bytes"
	"strings"
	"testing"

	"mla/internal/bank"
	"mla/internal/sched"
	"mla/internal/sim"
	"mla/internal/telemetry"
)

// TestImportChromeFromSim is the end-to-end importer path: run the
// simulator with telemetry on, export the Chrome trace, import it back,
// and check the reconstructed history. The preventer only admits
// MLA-correct schedules, so the (sound, flat-nest) importer verdict must
// be acceptance.
func TestImportChromeFromSim(t *testing.T) {
	p := bank.DefaultParams()
	p.Families = 2
	p.AccountsPerFamily = 3
	p.Transfers = 8
	p.BankAudits = 1
	p.CreditorAudits = 1
	p.Seed = 11
	wl := bank.Generate(p)

	cfg := sim.DefaultConfig()
	cfg.Telemetry = telemetry.New()
	res, err := sim.Run(cfg, wl.Programs, sched.NewPreventer(wl.Nest, wl.Spec), wl.Spec, wl.Init)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Committed == 0 {
		t.Fatal("sim committed nothing; trace would be empty")
	}

	var buf bytes.Buffer
	if err := cfg.Telemetry.Trace.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	runs, err := ImportChrome(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var checked int
	for _, run := range runs {
		if run.History == nil {
			continue
		}
		checked++
		rep, err := Check(run.History)
		if err != nil {
			t.Fatalf("%s: %v", run.Name, err)
		}
		if !rep.Correctable {
			t.Errorf("%s: preventer-produced trace rejected: %v", run.Name, rep.Witness)
		}
		if rep.Txns != res.Stats.Committed {
			t.Errorf("%s: imported %d txns, sim committed %d", run.Name, rep.Txns, res.Stats.Committed)
		}
	}
	if checked == 0 {
		t.Fatal("no step-recording lane found in the exported trace")
	}
}

// A hand-built Chrome trace whose step lane encodes the classic
// non-serializable cross with no recorded cuts: the flat-nest importer
// must reject it. (k defaults to 2 when no cut is recorded, so the two
// transactions are mutually serializable — and aren't.)
const violatingChrome = `{
  "traceEvents": [
    {"name": "process_name", "ph": "M", "pid": 7, "args": {"name": "engine run 1"}},
    {"name": "t1[1]", "cat": "step", "ph": "i", "ts": 1, "pid": 7, "tid": 1,
     "args": {"txn": "t1", "seq": "1", "entity": "x", "cut": "0"}},
    {"name": "t2[1]", "cat": "step", "ph": "i", "ts": 2, "pid": 7, "tid": 2,
     "args": {"txn": "t2", "seq": "1", "entity": "y", "cut": "0"}},
    {"name": "t2[2]", "cat": "step", "ph": "i", "ts": 3, "pid": 7, "tid": 2,
     "args": {"txn": "t2", "seq": "2", "entity": "x", "cut": "0"}},
    {"name": "t1[2]", "cat": "step", "ph": "i", "ts": 4, "pid": 7, "tid": 1,
     "args": {"txn": "t1", "seq": "2", "entity": "y", "cut": "0"}},
    {"name": "commit group (2)", "cat": "commit-group", "ph": "i", "ts": 5, "pid": 7, "tid": 0,
     "args": {"txns": "t1,t2"}}
  ]
}`

func TestImportChromeRejectsViolation(t *testing.T) {
	runs, err := ImportChrome(strings.NewReader(violatingChrome))
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 1 || runs[0].History == nil {
		t.Fatalf("want 1 run with a history, got %+v", runs)
	}
	rep, err := Check(runs[0].History)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Correctable {
		t.Fatal("violating chrome trace accepted")
	}
	if rep.Witness == nil {
		t.Fatal("no witness for the chrome violation")
	}
}

func TestImportChromeMalformed(t *testing.T) {
	cases := map[string]string{
		"not json": `{oops`,
		"step missing txn": `{"traceEvents": [
			{"name": "s", "cat": "step", "ph": "i", "ts": 1, "pid": 1, "tid": 1,
			 "args": {"seq": "1", "entity": "x"}}]}`,
		"step bad seq": `{"traceEvents": [
			{"name": "s", "cat": "step", "ph": "i", "ts": 1, "pid": 1, "tid": 1,
			 "args": {"txn": "t1", "seq": "zero", "entity": "x"}}]}`,
		"commit group without txns": `{"traceEvents": [
			{"name": "s", "cat": "step", "ph": "i", "ts": 1, "pid": 1, "tid": 1,
			 "args": {"txn": "t1", "seq": "1", "entity": "x"}},
			{"name": "cg", "cat": "commit-group", "ph": "i", "ts": 2, "pid": 1, "tid": 0,
			 "args": {}}]}`,
	}
	for name, in := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := ImportChrome(strings.NewReader(in)); err == nil {
				t.Fatal("want an import error, got nil")
			}
		})
	}
}

// A trace with spans but no step lane (e.g. a metrics-only export) yields
// no history rather than an error.
func TestImportChromeNoStepLanes(t *testing.T) {
	in := `{"traceEvents": [
		{"name": "process_name", "ph": "M", "pid": 3, "args": {"name": "idle"}},
		{"name": "run 1", "cat": "run", "ph": "X", "ts": 0, "dur": 100, "pid": 3, "tid": 0, "args": {}}]}`
	runs, err := ImportChrome(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range runs {
		if r.History != nil {
			t.Fatalf("run %q produced a history from a step-free trace", r.Name)
		}
	}
}
