package history

import (
	"math/rand"
	"testing"

	"mla/internal/bank"
	"mla/internal/coherent"
	"mla/internal/model"
)

// FuzzHistoryCheck is the checker-vs-scheduler oracle: for an arbitrary
// seed, generate a banking workload, interleave it randomly, record the
// execution as a black-box history, and demand that the history checker's
// verdict matches the Theorem 2 analysis run directly on the execution.
// Any divergence means one of the two implementations of multilevel
// atomicity is wrong.
func FuzzHistoryCheck(f *testing.F) {
	f.Add(int64(0))
	f.Add(int64(1))
	f.Add(int64(42))
	f.Add(int64(-7))
	f.Fuzz(func(t *testing.T, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		p := bank.DefaultParams()
		p.Families = 2 + rng.Intn(2)
		p.AccountsPerFamily = 2 + rng.Intn(3)
		p.Transfers = 3 + rng.Intn(5)
		p.BankAudits = rng.Intn(2)
		p.CreditorAudits = rng.Intn(2)
		p.Seed = seed
		wl := bank.Generate(p)

		vals := make(map[model.EntityID]model.Value, len(wl.Init))
		for k, v := range wl.Init {
			vals[k] = v
		}
		exec, err := model.RandomInterleave(wl.Programs, vals, rng)
		if err != nil {
			t.Fatalf("interleave: %v", err)
		}
		n := wl.Nest.Restrict(exec.Txns())

		h, err := FromExecution(exec, n, wl.Spec)
		if err != nil {
			t.Fatalf("FromExecution: %v", err)
		}
		rep, err := Check(h)
		if err != nil {
			t.Fatalf("Check: %v", err)
		}
		res, err := coherent.CheckExecution(exec, n, wl.Spec)
		if err != nil {
			t.Fatalf("CheckExecution: %v", err)
		}
		if rep.Atomic != res.Atomic {
			t.Errorf("seed %d: atomic: history=%v coherent=%v", seed, rep.Atomic, res.Atomic)
		}
		if rep.Correctable != res.Correctable {
			t.Errorf("seed %d: correctable: history=%v coherent=%v", seed, rep.Correctable, res.Correctable)
		}
		if !rep.Correctable && (rep.Witness == nil || len(rep.Witness.Edges) == 0) {
			t.Errorf("seed %d: violation without a witness cycle", seed)
		}
		// The history must survive its own encode/decode round trip too.
		if err := h.Validate(); err != nil {
			t.Errorf("seed %d: generated history invalid: %v", seed, err)
		}
	})
}
