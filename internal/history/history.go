// Package history is the black-box side of the checker: a first-class
// execution-history format (steps, aborts, and commit groups as they
// happened, plus the declared level matrix and recorded breakpoint
// coarsenesses) and an independent decision procedure for multilevel
// atomicity over it.
//
// Unlike internal/trace, which serializes an already-surviving execution
// together with a materialized specification, a history is a raw event log:
// it contains the steps of aborted attempts, the aborts that discarded
// them, and the commit events that promoted the rest. The checker replays
// the log to reconstruct the committed execution and the per-transaction
// breakpoint descriptions, then decides MLA-correctness from scratch —
// sharing only the data types (model, nest, breakpoint) with the scheduler
// and the Theorem 2 machinery it cross-examines, none of the logic.
//
// Histories are recorded live by the engine (Recorder implements the
// engine's Observer shape), derived from a simulator result
// (FromExecution), or imported from the Chrome trace-event JSON that
// internal/telemetry exports (ImportChrome).
package history

import (
	"encoding/json"
	"fmt"
	"io"

	"mla/internal/breakpoint"
	"mla/internal/model"
	"mla/internal/nest"
)

// Format is the native on-disk format identifier.
const Format = "mla-history/v1"

// Event kinds.
const (
	KindStep   = "step"
	KindAbort  = "abort"
	KindCommit = "commit"
)

// Event is one entry of the log. The array order of History.Events IS the
// total order of the run; TS is informational (performance timestamps for
// traces that have them, a logical counter otherwise).
type Event struct {
	TS   int64  `json:"ts,omitempty"`
	Kind string `json:"kind"`

	// Step fields: the Seq-th step (1-based) of Txn accessed Entity; Cut is
	// the coarseness of the breakpoint boundary after the step (0 = no
	// boundary recorded, i.e. the unit continues or the transaction ended).
	Txn    model.TxnID    `json:"txn,omitempty"`
	Seq    int            `json:"seq,omitempty"`
	Entity model.EntityID `json:"entity,omitempty"`
	Label  string         `json:"label,omitempty"`
	Cut    int            `json:"cut,omitempty"`

	// Abort fields: Txn is the victim; Kept is the number of prefix steps
	// that survive a partial rollback (0 = full abort).
	Kept int `json:"kept,omitempty"`

	// Commit fields: the members of the commit group.
	Txns []model.TxnID `json:"txns,omitempty"`
}

// History is the native format: the level matrix (as per-transaction
// intermediate nest labels, exactly k-2 each) plus the event log.
type History struct {
	Format string                   `json:"format"`
	K      int                      `json:"k"`
	Levels map[model.TxnID][]string `json:"levels"`
	Events []Event                  `json:"events"`
}

// Encode writes the history as indented JSON.
func (h *History) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(h)
}

// Decode parses and validates a native history. Every malformed input
// returns an error — the checker must never panic on untrusted files.
func Decode(r io.Reader) (*History, error) {
	var h History
	if err := json.NewDecoder(r).Decode(&h); err != nil {
		return nil, fmt.Errorf("history: %w", err)
	}
	if err := h.Validate(); err != nil {
		return nil, err
	}
	return &h, nil
}

// Validate checks structural consistency: the format tag, k ≥ 2, label
// paths of length k-2, known event kinds, cut coarsenesses in {0} ∪ [2,k],
// and every event transaction present in the level map.
func (h *History) Validate() error {
	if h.Format != Format {
		return fmt.Errorf("history: format %q, want %q", h.Format, Format)
	}
	if h.K < 2 {
		return fmt.Errorf("history: k=%d out of range (want >= 2)", h.K)
	}
	for t, path := range h.Levels {
		if len(path) != h.K-2 {
			return fmt.Errorf("history: %s has %d level labels, want %d", t, len(path), h.K-2)
		}
	}
	known := func(t model.TxnID) error {
		if _, ok := h.Levels[t]; !ok {
			return fmt.Errorf("history: transaction %s missing from the level matrix", t)
		}
		return nil
	}
	for i, ev := range h.Events {
		switch ev.Kind {
		case KindStep:
			if err := known(ev.Txn); err != nil {
				return fmt.Errorf("event %d: %w", i, err)
			}
			if ev.Seq < 1 {
				return fmt.Errorf("history: event %d: step seq %d out of range", i, ev.Seq)
			}
			if ev.Cut != 0 && (ev.Cut < 2 || ev.Cut > h.K) {
				return fmt.Errorf("history: event %d: cut coarseness %d outside [2,%d]", i, ev.Cut, h.K)
			}
		case KindAbort:
			if err := known(ev.Txn); err != nil {
				return fmt.Errorf("event %d: %w", i, err)
			}
			if ev.Kept < 0 {
				return fmt.Errorf("history: event %d: negative kept prefix %d", i, ev.Kept)
			}
		case KindCommit:
			for _, t := range ev.Txns {
				if err := known(t); err != nil {
					return fmt.Errorf("event %d: %w", i, err)
				}
			}
		default:
			return fmt.Errorf("history: event %d: unknown kind %q", i, ev.Kind)
		}
	}
	return nil
}

// Nest reconstructs the k-nest from the level matrix.
func (h *History) Nest() (*nest.Nest, error) {
	n := nest.New(h.K)
	txns := make([]model.TxnID, 0, len(h.Levels))
	for t := range h.Levels {
		txns = append(txns, t)
	}
	model.SortTxnIDs(txns)
	for _, t := range txns {
		n.Add(t, h.Levels[t]...)
	}
	return n, nil
}

// Committed replays the event log and returns the committed execution (the
// steps of each transaction's final committed attempt, in performance
// order) together with the breakpoint description recorded for each
// committed transaction.
//
// Replay rules: a step extends the transaction's pending attempt (a step
// with seq 1 over a nonempty pending attempt is an implicit restart — a
// recorder that missed the abort); an abort discards the pending attempt
// beyond the kept prefix (cascaded victims and full aborts have Kept 0); a
// commit promotes the members' pending steps. A step for an
// already-committed transaction demotes it back to pending (a torn commit
// re-executed after crash recovery: the last commit wins).
func (h *History) Committed() (model.Execution, map[model.TxnID]*breakpoint.Description, error) {
	pending := make(map[model.TxnID][]int)   // txn -> event indices of the pending attempt
	committed := make(map[model.TxnID][]int) // txn -> event indices of the committed attempt
	for i, ev := range h.Events {
		switch ev.Kind {
		case KindStep:
			t := ev.Txn
			if _, done := committed[t]; done {
				delete(committed, t) // re-execution after a torn commit
				pending[t] = nil
			}
			if ev.Seq == 1 && len(pending[t]) > 0 {
				pending[t] = nil // implicit restart
			}
			if ev.Seq != len(pending[t])+1 {
				return nil, nil, fmt.Errorf("history: event %d: %s step seq %d, want %d (gap in the attempt)",
					i, t, ev.Seq, len(pending[t])+1)
			}
			pending[t] = append(pending[t], i)
		case KindAbort:
			t := ev.Txn
			if ev.Kept > len(pending[t]) {
				return nil, nil, fmt.Errorf("history: event %d: abort keeps %d steps but %s performed %d",
					i, ev.Kept, t, len(pending[t]))
			}
			pending[t] = pending[t][:ev.Kept]
		case KindCommit:
			for _, t := range ev.Txns {
				if _, done := committed[t]; done {
					return nil, nil, fmt.Errorf("history: event %d: %s committed twice", i, t)
				}
				committed[t] = pending[t]
				delete(pending, t)
			}
		}
	}
	var idxs []int
	for _, evIdxs := range committed {
		idxs = append(idxs, evIdxs...)
	}
	sortInts(idxs)
	exec := make(model.Execution, 0, len(idxs))
	perTxn := make(map[model.TxnID][]Event)
	for _, i := range idxs {
		ev := h.Events[i]
		exec = append(exec, model.Step{Txn: ev.Txn, Seq: ev.Seq, Entity: ev.Entity, Label: ev.Label})
		perTxn[ev.Txn] = append(perTxn[ev.Txn], ev)
	}
	descs := make(map[model.TxnID]*breakpoint.Description, len(perTxn))
	for t, evs := range perTxn {
		d := breakpoint.NewDescription(h.K, len(evs))
		for p := 1; p < len(evs); p++ {
			if c := evs[p-1].Cut; c >= 2 && c <= h.K {
				d.SetCut(p, c)
			}
		}
		descs[t] = d
	}
	return exec, descs, nil
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// FromExecution derives the history of an already-surviving execution: one
// step event per step (with the coarseness the specification assigns to
// the boundary after it) and a single commit of every transaction. It is
// how deterministic simulator results enter the checker — the simulator's
// Result.Exec is the faithful performance order of the committed steps.
func FromExecution(e model.Execution, n *nest.Nest, spec breakpoint.Spec) (*History, error) {
	if n.K() != spec.K() {
		return nil, fmt.Errorf("history: nest k=%d but spec k=%d", n.K(), spec.K())
	}
	perTxn := make(map[model.TxnID][]model.Step)
	for _, s := range e {
		perTxn[s.Txn] = append(perTxn[s.Txn], s)
	}
	txns := make([]model.TxnID, 0, len(perTxn))
	for t := range perTxn {
		if !n.Has(t) {
			return nil, fmt.Errorf("history: transaction %s missing from nest", t)
		}
		txns = append(txns, t)
	}
	model.SortTxnIDs(txns)
	descs := make(map[model.TxnID]*breakpoint.Description, len(txns))
	for _, t := range txns {
		descs[t] = breakpoint.Describe(spec, t, perTxn[t])
	}
	h := &History{Format: Format, K: n.K(), Levels: LevelPaths(n, txns)}
	for i, s := range e {
		cut := 0
		if d := descs[s.Txn]; s.Seq < d.Len() {
			cut = d.Coarseness(s.Seq)
		}
		h.Events = append(h.Events, Event{
			TS: int64(i), Kind: KindStep,
			Txn: s.Txn, Seq: s.Seq, Entity: s.Entity, Label: s.Label, Cut: cut,
		})
	}
	if len(txns) > 0 {
		h.Events = append(h.Events, Event{TS: int64(len(e)), Kind: KindCommit, Txns: txns})
	}
	return h, nil
}

// LevelPaths recovers intermediate nest labels (levels 2..k-1) for the
// given transactions by probing class membership level by level — the nest
// API does not expose raw paths, so stable labels are synthesized from
// class indices. Two transactions get equal labels at a level exactly when
// they share that level's class, which is all the level matrix encodes.
func LevelPaths(n *nest.Nest, txns []model.TxnID) map[model.TxnID][]string {
	out := make(map[model.TxnID][]string, len(txns))
	want := make(map[model.TxnID]bool, len(txns))
	for _, t := range txns {
		want[t] = true
		out[t] = make([]string, 0, n.K()-2)
	}
	for lv := 2; lv < n.K(); lv++ {
		for ci, class := range n.Classes(lv) {
			for _, t := range class {
				if want[t] {
					out[t] = append(out[t], fmt.Sprintf("L%d-C%d", lv, ci))
				}
			}
		}
	}
	return out
}
