package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"reflect"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"mla/internal/metrics"
)

// Naming scheme: every metric is "<layer>.<counter>" in lower_snake —
// engine.steps, lock.holders, wal.syncs, net.delivered, dist.grace_aborts.
// ObserveSnapshot derives names mechanically from the per-package Stats
// structs, so the registry's view stays consistent with each package's own
// Snapshot() convention instead of inventing a second vocabulary.

// Counter is a monotonically increasing, race-safe tally.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by d.
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a race-safe last-value metric.
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge's value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram accumulates int64 samples and summarizes them with order
// statistics. Observe takes a lock; it belongs on reporting paths (one
// call per wait, per commit), not per-step hot loops.
type Histogram struct {
	mu      sync.Mutex
	samples []int64
}

// Observe records one sample.
func (h *Histogram) Observe(v int64) {
	h.mu.Lock()
	h.samples = append(h.samples, v)
	h.mu.Unlock()
}

// Summary returns order statistics over the samples recorded so far.
func (h *Histogram) Summary() metrics.Summary {
	h.mu.Lock()
	s := append([]int64(nil), h.samples...)
	h.mu.Unlock()
	return metrics.Summarize(s)
}

// Registry is the run-wide aggregated view: named counters, gauges, and
// histograms behind one race-safe surface. Metrics are created on first
// use; the same name always returns the same instance.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns (creating if needed) the named counter.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// ObserveSnapshot folds a package's Snapshot() stats struct into the
// registry: every exported numeric field is ADDED to the counter named
// prefix.field (lower_snake), so repeated runs aggregate instead of
// overwriting each other. It accepts a struct or pointer to struct and
// silently skips non-numeric fields — the uniform bridge from the
// per-package Stats conventions (lock, sched, wal, net, dist) to the
// run-wide view.
func (r *Registry) ObserveSnapshot(prefix string, snap any) {
	v := reflect.ValueOf(snap)
	for v.Kind() == reflect.Pointer {
		if v.IsNil() {
			return
		}
		v = v.Elem()
	}
	if v.Kind() != reflect.Struct {
		return
	}
	t := v.Type()
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if !f.IsExported() {
			continue
		}
		var n int64
		switch fv := v.Field(i); fv.Kind() {
		case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
			n = fv.Int()
		case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
			n = int64(fv.Uint())
		case reflect.Float32, reflect.Float64:
			n = int64(fv.Float())
		default:
			continue
		}
		r.Counter(prefix + "." + snakeCase(f.Name)).Add(n)
	}
}

// snakeCase converts an exported Go field name to lower_snake:
// "DroppedLink" -> "dropped_link", "P99" -> "p99".
func snakeCase(name string) string {
	var b strings.Builder
	for i, c := range name {
		if c >= 'A' && c <= 'Z' {
			if i > 0 && (name[i-1] < 'A' || name[i-1] > 'Z') {
				b.WriteByte('_')
			}
			c += 'a' - 'A'
		}
		b.WriteRune(c)
	}
	return b.String()
}

// flat returns every metric as a sorted name -> value map; histograms
// expand to name.count/min/max/mean/p50/p95/p99.
func (r *Registry) flat() map[string]any {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]any, len(r.counters)+len(r.gauges)+7*len(r.hists))
	for name, c := range r.counters {
		out[name] = c.Value()
	}
	for name, g := range r.gauges {
		out[name] = g.Value()
	}
	for name, h := range r.hists {
		s := h.Summary()
		out[name+".count"] = int64(s.N)
		out[name+".min"] = s.Min
		out[name+".max"] = s.Max
		out[name+".mean"] = s.Mean
		out[name+".p50"] = s.P50
		out[name+".p95"] = s.P95
		out[name+".p99"] = s.P99
	}
	return out
}

// WriteJSON writes the flat metrics dump (encoding/json sorts the keys).
func (r *Registry) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(r.flat(), "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// Table renders the registry expvar-style: one sorted name/value row per
// metric, via the same metrics.Table every bench report uses.
func (r *Registry) Table() *metrics.Table {
	flat := r.flat()
	names := make([]string, 0, len(flat))
	for name := range flat {
		names = append(names, name)
	}
	sort.Strings(names)
	tbl := metrics.NewTable("telemetry", "metric", "value")
	for _, name := range names {
		tbl.Row(name, fmt.Sprintf("%v", flat[name]))
	}
	return tbl
}
