package telemetry

import (
	"encoding/json"
	"io"
	"sort"
)

// Chrome trace-event export: the merged spans serialized in the JSON Object
// Format that chrome://tracing and Perfetto (ui.perfetto.dev) load
// directly. Every span becomes one complete event (ph "X") with
// microsecond-resolution ts/dur (fractions carry the nanosecond digits);
// process and thread lanes carry metadata name events so transactions show
// up as labeled swimlanes.

// chromeEvent is one trace event; field names are the Chrome schema.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"`
	Dur  float64           `json:"dur"`
	PID  int64             `json:"pid"`
	TID  int64             `json:"tid"`
	S    string            `json:"s,omitempty"` // instant scope; "t" = thread
	Args map[string]string `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChrome exports the tracer's merged spans as Chrome trace-event
// JSON. Events are emitted in nondecreasing timestamp order. Call after
// the traced runs have returned (see Spans).
func (tr *Tracer) WriteChrome(w io.Writer) error {
	spans := tr.Spans()
	tr.mu.Lock()
	procs := make(map[int64]string, len(tr.procs))
	for pid, name := range tr.procs {
		procs[pid] = name
	}
	lanes := make(map[[2]int64]string, len(tr.lanes))
	for k, name := range tr.lanes {
		lanes[k] = name
	}
	tr.mu.Unlock()

	out := chromeTrace{DisplayTimeUnit: "ms", TraceEvents: []chromeEvent{}}
	// Metadata first: lane names, emitted at ts 0 in stable order.
	pids := make([]int64, 0, len(procs))
	for pid := range procs {
		pids = append(pids, pid)
	}
	sort.Slice(pids, func(i, j int) bool { return pids[i] < pids[j] })
	for _, pid := range pids {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", PID: pid,
			Args: map[string]string{"name": procs[pid]},
		})
	}
	keys := make([][2]int64, 0, len(lanes))
	for k := range lanes {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, k := range keys {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", PID: k[0], TID: k[1],
			Args: map[string]string{"name": lanes[k]},
		})
	}
	for _, s := range spans {
		args := s.Args
		if s.Parent != 0 {
			args = copyArgs(args)
			args["parent"] = itoa(int64(s.Parent))
		}
		ev := chromeEvent{
			Name: s.Name,
			Cat:  s.Cat,
			Ph:   "X",
			TS:   float64(s.Start) / 1e3,
			Dur:  float64(s.End-s.Start) / 1e3,
			PID:  s.PID,
			TID:  s.TID,
			Args: args,
		}
		// Zero-duration spans are instants, not empty intervals: the Chrome
		// schema renders ph "X" dur 0 as invisible slivers and some viewers
		// drop them, while ph "i" draws a marker. Scope "t" pins it to its
		// thread lane.
		if s.End == s.Start {
			ev.Ph, ev.S, ev.Dur = "i", "t", 0
		}
		out.TraceEvents = append(out.TraceEvents, ev)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
