package telemetry

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// SpanID identifies one span within a Tracer. 0 is "no span" (no parent).
type SpanID int64

// Span is one timed interval of a run: a transaction attempt, a breakpoint
// unit, a lock wait, a commit group, a recovery pass, a replica RPC.
// Timestamps are nanoseconds since the tracer's epoch; instant events are
// spans with End == Start. PID groups spans into a process lane (one engine
// run, one simulator run, one bus) and TID into a thread lane within it
// (one transaction, one processor) — the two axes Chrome's trace viewer
// and Perfetto render as nested swimlanes.
type Span struct {
	ID     SpanID
	Parent SpanID
	Cat    string // taxonomy: run, txn, unit, lock-wait, commit-group, recovery, crash, abort, fault, gaveup, replica-rpc
	Name   string
	PID    int64
	TID    int64
	Start  int64 // ns since the tracer epoch
	End    int64 // ns; == Start for instant events
	Args   map[string]string
}

// Dur returns the span's duration in nanoseconds.
func (s Span) Dur() int64 { return s.End - s.Start }

// Tracer collects spans from any number of goroutines with no locking on
// the record path: each producer asks for a Local once (a mutex-guarded
// registration) and then appends spans to it without synchronization.
// Locals are merged by Spans() after the run quiesces. The design keeps
// enabled tracing off every contended path — the engine's observer hooks
// append to one Local under the engine mutex it already holds, so tracing
// adds no lock the engine does not take anyway.
type Tracer struct {
	epoch time.Time
	ids   atomic.Int64
	pids  atomic.Int64

	mu     sync.Mutex
	locals []*Local
	procs  map[int64]string    // pid -> process lane name
	lanes  map[[2]int64]string // (pid, tid) -> thread lane name
}

// NewTracer returns a tracer whose clock starts now.
func NewTracer() *Tracer {
	return &Tracer{
		epoch: time.Now(),
		procs: make(map[int64]string),
		lanes: make(map[[2]int64]string),
	}
}

// Now returns nanoseconds since the tracer's epoch. Wall-clock producers
// (the engine) use it; simulated-time producers (the bus, the simulator)
// supply their own timestamps and never call it.
func (tr *Tracer) Now() int64 { return time.Since(tr.epoch).Nanoseconds() }

// NextPID allocates a fresh process-lane id.
func (tr *Tracer) NextPID() int64 { return tr.pids.Add(1) }

// NameProcess labels a process lane in the exported trace.
func (tr *Tracer) NameProcess(pid int64, name string) {
	tr.mu.Lock()
	tr.procs[pid] = name
	tr.mu.Unlock()
}

// NameLane labels a thread lane in the exported trace.
func (tr *Tracer) NameLane(pid, tid int64, name string) {
	tr.mu.Lock()
	tr.lanes[[2]int64{pid, tid}] = name
	tr.mu.Unlock()
}

// Local registers a new lock-free span buffer. The returned Local must be
// used from one goroutine at a time (the caller supplies the serialization
// — a worker's own goroutine, or a mutex it already holds).
func (tr *Tracer) Local() *Local {
	l := &Local{tr: tr, open: make(map[SpanID]*Span)}
	tr.mu.Lock()
	tr.locals = append(tr.locals, l)
	tr.mu.Unlock()
	return l
}

// Spans merges every Local's buffer into one slice sorted by start time.
// Spans still open at merge time are reported as closing at their Local's
// latest recorded timestamp (their Args gain open=true) — not at the
// tracer's wall clock, which would hand simulated-time producers an end
// far beyond anything they recorded and inflate the leaked span's duration
// past every child. Call it only after producers have quiesced — typically
// after the run returns.
func (tr *Tracer) Spans() []Span {
	tr.mu.Lock()
	locals := append([]*Local(nil), tr.locals...)
	tr.mu.Unlock()
	var out []Span
	for _, l := range locals {
		out = append(out, l.done...)
		for _, sp := range l.open {
			s := *sp
			s.End = l.maxTS
			if s.End < s.Start {
				s.End = s.Start
			}
			s.Args = copyArgs(s.Args)
			s.Args["open"] = "true"
			out = append(out, s)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].ID < out[j].ID
	})
	return out
}

func copyArgs(in map[string]string) map[string]string {
	out := make(map[string]string, len(in)+1)
	for k, v := range in {
		out[k] = v
	}
	return out
}

func kvArgs(kv []string) map[string]string {
	if len(kv) == 0 {
		return nil
	}
	m := make(map[string]string, len(kv)/2)
	for i := 0; i+1 < len(kv); i += 2 {
		m[kv[i]] = kv[i+1]
	}
	return m
}

// Local is one producer's span buffer. No method takes a lock; the caller
// guarantees single-goroutine (or externally serialized) access.
type Local struct {
	tr    *Tracer
	done  []Span
	open  map[SpanID]*Span
	maxTS int64 // latest timestamp this Local recorded; closes leaked spans
}

func (l *Local) see(ts int64) {
	if ts > l.maxTS {
		l.maxTS = ts
	}
}

// Begin opens a span starting now.
func (l *Local) Begin(cat, name string, pid, tid int64, parent SpanID, kv ...string) SpanID {
	return l.BeginAt(l.tr.Now(), cat, name, pid, tid, parent, kv...)
}

// BeginAt opens a span with an explicit start timestamp (simulated clocks).
func (l *Local) BeginAt(start int64, cat, name string, pid, tid int64, parent SpanID, kv ...string) SpanID {
	l.see(start)
	id := SpanID(l.tr.ids.Add(1))
	l.open[id] = &Span{
		ID: id, Parent: parent, Cat: cat, Name: name,
		PID: pid, TID: tid, Start: start, Args: kvArgs(kv),
	}
	return id
}

// Arg attaches a key/value to an open span; unknown ids are ignored (the
// span may have been closed by a racing lifecycle edge, e.g. an abort that
// beat a wait wakeup).
func (l *Local) Arg(id SpanID, k, v string) {
	sp, ok := l.open[id]
	if !ok {
		return
	}
	if sp.Args == nil {
		sp.Args = make(map[string]string, 1)
	}
	sp.Args[k] = v
}

// End closes an open span now. Closing an unknown id is a no-op.
func (l *Local) End(id SpanID) { l.EndAt(id, l.tr.Now()) }

// EndAt closes an open span at an explicit timestamp.
func (l *Local) EndAt(id SpanID, end int64) {
	l.see(end)
	sp, ok := l.open[id]
	if !ok {
		return
	}
	delete(l.open, id)
	if end < sp.Start {
		end = sp.Start
	}
	sp.End = end
	l.done = append(l.done, *sp)
}

// Open reports whether the span is still open on this Local.
func (l *Local) Open(id SpanID) bool { _, ok := l.open[id]; return ok }

// Event records an instant: a zero-duration span at the current time.
func (l *Local) Event(cat, name string, pid, tid int64, parent SpanID, kv ...string) SpanID {
	return l.RecordAt(l.tr.Now(), 0, cat, name, pid, tid, parent, kv...)
}

// RecordAt records a completed span with explicit start and duration —
// the one-call path for producers that know both ends (the simulated bus
// records an RPC when it delivers, with the send time in hand).
func (l *Local) RecordAt(start, dur int64, cat, name string, pid, tid int64, parent SpanID, kv ...string) SpanID {
	if dur < 0 {
		dur = 0
	}
	l.see(start + dur)
	id := SpanID(l.tr.ids.Add(1))
	l.done = append(l.done, Span{
		ID: id, Parent: parent, Cat: cat, Name: name,
		PID: pid, TID: tid, Start: start, End: start + dur, Args: kvArgs(kv),
	})
	return id
}
