package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// TestRegistryRaceSafety hammers one registry from many goroutines — same
// names, mixed metric kinds — and checks the totals. Run with -race for the
// full payoff.
func TestRegistryRaceSafety(t *testing.T) {
	r := NewRegistry()
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Counter("engine.steps").Inc()
				r.Gauge("engine.live").Set(int64(i))
				r.Histogram("engine.wait_us").Observe(int64(i % 100))
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("engine.steps").Value(); got != workers*per {
		t.Errorf("counter = %d, want %d", got, workers*per)
	}
	if s := r.Histogram("engine.wait_us").Summary(); s.N != workers*per {
		t.Errorf("histogram samples = %d, want %d", s.N, workers*per)
	}
	// Same name always returns the same instance.
	if r.Counter("engine.steps") != r.Counter("engine.steps") {
		t.Error("Counter returned distinct instances for one name")
	}
}

func TestSnakeCase(t *testing.T) {
	cases := map[string]string{
		"Committed":   "committed",
		"DroppedLink": "dropped_link",
		"P99":         "p99",
		"StaleWaits":  "stale_waits",
		"Syncs":       "syncs",
	}
	for in, want := range cases {
		if got := snakeCase(in); got != want {
			t.Errorf("snakeCase(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestObserveSnapshotAggregates folds the same stats struct in twice: the
// registry must ADD (aggregate across runs), not overwrite, must derive
// lower_snake names, and must skip unexported and non-numeric fields.
func TestObserveSnapshotAggregates(t *testing.T) {
	type stats struct {
		Committed   int
		DroppedLink int64
		Rate        float64
		Name        string // non-numeric: skipped
		hidden      int    // unexported: skipped
	}
	r := NewRegistry()
	s := stats{Committed: 3, DroppedLink: 7, Rate: 2.9, Name: "x", hidden: 99}
	r.ObserveSnapshot("net", s)
	r.ObserveSnapshot("net", &s) // pointer form works too
	if got := r.Counter("net.committed").Value(); got != 6 {
		t.Errorf("net.committed = %d, want 6", got)
	}
	if got := r.Counter("net.dropped_link").Value(); got != 14 {
		t.Errorf("net.dropped_link = %d, want 14", got)
	}
	if got := r.Counter("net.rate").Value(); got != 4 { // truncated per observation
		t.Errorf("net.rate = %d, want 4", got)
	}
	flat := r.flat()
	if _, ok := flat["net.name"]; ok {
		t.Error("non-numeric field leaked into the registry")
	}
	if _, ok := flat["net.hidden"]; ok {
		t.Error("unexported field leaked into the registry")
	}
}

func TestRegistryExports(t *testing.T) {
	r := NewRegistry()
	r.Counter("a.b").Add(5)
	r.Histogram("h").Observe(10)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatalf("WriteJSON produced invalid JSON: %v", err)
	}
	if m["a.b"] != float64(5) {
		t.Errorf("a.b = %v, want 5", m["a.b"])
	}
	if m["h.count"] != float64(1) {
		t.Errorf("h.count = %v, want 1", m["h.count"])
	}
	var tbl bytes.Buffer
	r.Table().Render(&tbl)
	if !strings.Contains(tbl.String(), "a.b") {
		t.Error("Table output missing metric name")
	}
}

// TestTracerNestingAndMerge exercises the span lifecycle across two Locals:
// parent links, per-Local buffers merged sorted by start, and open spans
// auto-closed at merge with the open=true marker.
func TestTracerNestingAndMerge(t *testing.T) {
	tr := NewTracer()
	pid := tr.NextPID()
	a, b := tr.Local(), tr.Local()

	run := a.BeginAt(0, "run", "run 1", pid, 0, 0)
	txn := a.BeginAt(10, "txn", "t1#0", pid, 1, run)
	wait := a.BeginAt(20, "lock-wait", "wait x", pid, 1, txn)
	a.Arg(wait, "entity", "x")
	a.EndAt(wait, 50)
	a.EndAt(txn, 60)
	a.EndAt(run, 100)
	b.RecordAt(5, 30, "replica-rpc", "boundary", pid, 2, 0)
	leak := b.BeginAt(40, "recovery", "recovery 2", pid, 0, 0)

	spans := tr.Spans()
	if len(spans) != 5 {
		t.Fatalf("merged %d spans, want 5", len(spans))
	}
	for i := 1; i < len(spans); i++ {
		if spans[i].Start < spans[i-1].Start {
			t.Fatalf("spans not sorted by start: %d after %d", spans[i].Start, spans[i-1].Start)
		}
	}
	byID := make(map[SpanID]Span)
	for _, s := range spans {
		byID[s.ID] = s
	}
	if byID[txn].Parent != run || byID[wait].Parent != txn {
		t.Error("parent links lost in merge")
	}
	w := byID[wait]
	tx := byID[txn]
	if w.Start < tx.Start || w.End > tx.End {
		t.Errorf("wait span [%d,%d] not nested within txn [%d,%d]", w.Start, w.End, tx.Start, tx.End)
	}
	if w.Args["entity"] != "x" {
		t.Error("Arg lost")
	}
	lk := byID[leak]
	if lk.Args["open"] != "true" {
		t.Error("span left open was not marked open=true at merge")
	}
	if lk.End < lk.Start {
		t.Error("auto-closed span ends before it starts")
	}
	// Closing or annotating an unknown id is a no-op, not a panic.
	a.End(wait)
	a.Arg(wait, "k", "v")
	if a.Open(wait) {
		t.Error("closed span still reported open")
	}
}

// TestChromeExportRoundTrips writes a small trace and re-reads it through
// encoding/json: metadata events lead, every span is a complete event with
// nonnegative microsecond timestamps in nondecreasing order, and parent
// links survive as args.
func TestChromeExportRoundTrips(t *testing.T) {
	tr := NewTracer()
	pid := tr.NextPID()
	tr.NameProcess(pid, "engine")
	tr.NameLane(pid, 1, "t1")
	l := tr.Local()
	run := l.BeginAt(0, "run", "run 1", pid, 0, 0)
	l.RecordAt(1000, 500, "lock-wait", "wait x", pid, 1, run)
	l.RecordAt(2500, 0, "commit-group", "commit group (2)", pid, 0, run, "size", "2")
	l.EndAt(run, 3000)

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Cat  string            `json:"cat"`
			Ph   string            `json:"ph"`
			TS   float64           `json:"ts"`
			Dur  float64           `json:"dur"`
			PID  int64             `json:"pid"`
			TID  int64             `json:"tid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if out.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", out.DisplayTimeUnit)
	}
	var meta, complete, instant int
	lastTS := -1.0
	sawParent := false
	for i, e := range out.TraceEvents {
		switch e.Ph {
		case "M":
			meta++
			if complete > 0 {
				t.Errorf("metadata event %d after a complete event", i)
			}
		case "X", "i":
			if e.Ph == "i" {
				instant++
				if e.Dur != 0 {
					t.Errorf("instant %q has dur %v", e.Name, e.Dur)
				}
			} else {
				complete++
			}
			if e.TS < 0 || e.Dur < 0 {
				t.Errorf("event %q has negative ts/dur", e.Name)
			}
			if e.TS < lastTS {
				t.Errorf("timestamps not monotone: %f after %f", e.TS, lastTS)
			}
			lastTS = e.TS
			if e.Args["parent"] != "" {
				sawParent = true
			}
		default:
			t.Errorf("unexpected phase %q", e.Ph)
		}
	}
	if meta != 2 {
		t.Errorf("metadata events = %d, want 2 (process_name + thread_name)", meta)
	}
	if complete != 2 {
		t.Errorf("complete events = %d, want 2 (run + lock-wait)", complete)
	}
	// The zero-duration commit-group event exports as an instant marker,
	// not an invisible zero-width interval.
	if instant != 1 {
		t.Errorf("instant events = %d, want 1 (the commit-group)", instant)
	}
	if !sawParent {
		t.Error("no event carried a parent arg")
	}
	// The wait span's microsecond conversion: 1000ns start = 1µs.
	for _, e := range out.TraceEvents {
		if e.Cat == "lock-wait" {
			if e.TS != 1.0 || e.Dur != 0.5 {
				t.Errorf("lock-wait ts/dur = %v/%v, want 1/0.5", e.TS, e.Dur)
			}
		}
	}
}

// TestOpenSpanClosesAtLastRecordedTimestamp: a span still open at export
// time must close at its Local's latest recorded timestamp, not at the
// tracer's wall clock — a simulated-time producer records timestamps in
// SimUnits (a few thousand ns), and wall-clock now would hand a leaked run
// span a duration millions of units past its deepest child.
func TestOpenSpanClosesAtLastRecordedTimestamp(t *testing.T) {
	tr := NewTracer()
	pid := tr.NextPID()
	l := tr.Local()
	run := l.BeginAt(0, "run", "sim run", pid, 0, 0)
	l.RecordAt(1000, 500, "txn", "t1", pid, 1, run)
	l.RecordAt(2000, 0, "commit-group", "cg", pid, 0, run)
	// run is left open deliberately (a producer that died before sealing).
	spans := tr.Spans()
	var found bool
	for _, s := range spans {
		if s.ID != run {
			continue
		}
		found = true
		if s.Args["open"] != "true" {
			t.Error("leaked span not marked open=true")
		}
		if s.End != 2000 {
			t.Errorf("leaked span closed at %d, want the local's last recorded timestamp 2000", s.End)
		}
	}
	if !found {
		t.Fatal("open span missing from merge")
	}
}

func TestSimUnit(t *testing.T) {
	if SimUnit(7) != 7000 {
		t.Errorf("SimUnit(7) = %d", SimUnit(7))
	}
}
