package telemetry

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartPprof begins CPU profiling to prefix+".cpu.pprof" and returns a
// stop function that ends the CPU profile and writes a heap profile to
// prefix+".heap.pprof". Both cmds expose it behind the -pprof flag; the
// profiles open with `go tool pprof`.
func StartPprof(prefix string) (stop func() error, err error) {
	cpu, err := os.Create(prefix + ".cpu.pprof")
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(cpu); err != nil {
		cpu.Close()
		return nil, fmt.Errorf("telemetry: start cpu profile: %w", err)
	}
	return func() error {
		pprof.StopCPUProfile()
		if err := cpu.Close(); err != nil {
			return err
		}
		heap, err := os.Create(prefix + ".heap.pprof")
		if err != nil {
			return err
		}
		runtime.GC() // fresh heap numbers, not a stale GC cycle's
		if err := pprof.WriteHeapProfile(heap); err != nil {
			heap.Close()
			return fmt.Errorf("telemetry: write heap profile: %w", err)
		}
		return heap.Close()
	}, nil
}
