// Package telemetry is the run-wide observability layer: a registry of
// named counters, gauges, and histograms that unifies the per-package
// Snapshot() stats conventions (lock, sched, wal, net, dist) behind one
// aggregated race-safe view, and a span tracer recording per-transaction
// timelines — run, transaction attempt, breakpoint unit, lock wait, commit
// group, recovery pass, replica RPC — lock-free per goroutine and merged
// at run end.
//
// It exports three ways:
//
//   - Chrome trace-event JSON (WriteTrace / Tracer.WriteChrome), loadable
//     in chrome://tracing or Perfetto;
//   - a flat JSON metrics dump (WriteMetrics / Registry.WriteJSON);
//   - an expvar-style text rendering (Table / Registry.Table).
//
// The package depends only on the standard library and internal/metrics;
// every producer hook is designed so that DISABLED telemetry costs exactly
// one nil check on the producer's side (the engine's Observer, the bus's
// attached Local), which is what lets the perf gate demand <5% overhead
// with telemetry off.
//
// Timestamps: wall-clock producers use Tracer.Now (nanoseconds since the
// tracer's epoch). Simulated-time producers map one simulator time unit to
// one microsecond (unit*1000 ns), so simulator traces render on the same
// axis conventions without pretending to wall-clock accuracy.
package telemetry

import (
	"os"

	"mla/internal/metrics"
)

// SimUnit converts a simulated timestamp (discrete simulator units) to
// trace nanoseconds: one unit maps to one microsecond.
func SimUnit(t int64) int64 { return t * 1000 }

// Telemetry bundles the two halves of the observability layer. A nil
// *Telemetry means "disabled" everywhere it is accepted.
type Telemetry struct {
	Metrics *Registry
	Trace   *Tracer
}

// New returns an enabled, empty telemetry sink.
func New() *Telemetry {
	return &Telemetry{Metrics: NewRegistry(), Trace: NewTracer()}
}

// WriteTrace writes the merged spans as Chrome trace-event JSON to path.
func (t *Telemetry) WriteTrace(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.Trace.WriteChrome(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// WriteMetrics writes the flat JSON metrics dump to path.
func (t *Telemetry) WriteMetrics(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.Metrics.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Table renders the registry as an aligned text table.
func (t *Telemetry) Table() *metrics.Table { return t.Metrics.Table() }
