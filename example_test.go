package mla_test

import (
	"fmt"

	"mla"
)

// Example demonstrates the full public-API flow: build a specification,
// record an execution, and ask the paper's three questions.
func Example() {
	// Two customers in one class, k=3.
	n := mla.NewNest(3)
	n.Add("t1", "cust")
	n.Add("t2", "cust")

	// Every interior boundary is a class-wide breakpoint: members of
	// "cust" may interleave arbitrarily (Garcia-Molina compatibility sets).
	spec, err := mla.NewSpec(n, mla.Uniform(3, 2))
	if err != nil {
		panic(err)
	}

	// A ping-pong interleaving that is NOT serializable.
	e := mla.Execution{
		{Txn: "t1", Seq: 1, Entity: "x"},
		{Txn: "t2", Seq: 1, Entity: "x"},
		{Txn: "t2", Seq: 2, Entity: "y"},
		{Txn: "t1", Seq: 2, Entity: "y"},
	}
	atomic, _ := spec.Atomic(e)
	correctable, _ := spec.Correctable(e)
	ser, _ := mla.Serializability([]mla.TxnID{"t1", "t2"}).Correctable(e)
	fmt.Println("atomic:", atomic)
	fmt.Println("correctable:", correctable)
	fmt.Println("serializable:", ser)
	// Output:
	// atomic: true
	// correctable: true
	// serializable: false
}

// ExampleSpec_Witness shows Lemma 1 in action: a correctable execution is
// reordered into an equivalent multilevel atomic one.
func ExampleSpec_Witness() {
	n := mla.NewNest(2)
	n.Add("t1")
	n.Add("t2")
	spec, _ := mla.NewSpec(n, mla.Uniform(2, 2))

	// t2's step is recorded between t1's two steps, but nothing orders
	// them: the execution is correctable though not serial.
	e := mla.Execution{
		{Txn: "t1", Seq: 1, Entity: "x"},
		{Txn: "t2", Seq: 1, Entity: "z"},
		{Txn: "t1", Seq: 2, Entity: "y"},
	}
	w, ok, _ := spec.Witness(e)
	fmt.Println("witness found:", ok)
	for _, s := range w {
		fmt.Printf("%s[%d] on %s\n", s.Txn, s.Seq, s.Entity)
	}
	// Output:
	// witness found: true
	// t2[1] on z
	// t1[1] on x
	// t1[2] on y
}

// ExampleBreakpointFunc shows a phase-structured breakpoint specification:
// a transfer exposes its only class-wide breakpoint between the withdrawal
// and deposit phases.
func ExampleBreakpointFunc() {
	bp := mla.BreakpointFunc(3, func(t mla.TxnID, prefix []mla.Step) int {
		if prefix[len(prefix)-1].Label == "withdraw" && len(prefix) == 2 {
			return 2 // end of the withdrawal phase
		}
		return 3
	})
	prefix := []mla.Step{
		{Txn: "t", Seq: 1, Label: "withdraw"},
		{Txn: "t", Seq: 2, Label: "withdraw"},
	}
	fmt.Println("coarseness after phase:", bp.CutAfter("t", prefix))
	fmt.Println("coarseness mid-phase:", bp.CutAfter("t", prefix[:1]))
	// Output:
	// coarseness after phase: 2
	// coarseness mid-phase: 3
}

// ExampleCompatibilitySets builds Garcia-Molina's scheme, the k=3 special
// case of multilevel atomicity.
func ExampleCompatibilitySets() {
	spec := mla.CompatibilitySets([][]mla.TxnID{
		{"deposit-1", "deposit-2"}, // compatible with each other
		{"report"},                 // must be atomic wrt everything
	})
	e := mla.Execution{
		{Txn: "deposit-1", Seq: 1, Entity: "acct"},
		{Txn: "report", Seq: 1, Entity: "acct"},
		{Txn: "deposit-1", Seq: 2, Entity: "acct"},
	}
	ok, _ := spec.Correctable(e)
	fmt.Println("report interrupting a deposit:", ok)
	// Output:
	// report interrupting a deposit: false
}
