package mla_test

import (
	"context"
	"fmt"

	"mla"
)

// Example demonstrates the full public-API flow: build a specification,
// record an execution, and ask the paper's three questions.
func Example() {
	// Two customers in one class, k=3.
	n := mla.NewNest(3)
	n.Add("t1", "cust")
	n.Add("t2", "cust")

	// Every interior boundary is a class-wide breakpoint: members of
	// "cust" may interleave arbitrarily (Garcia-Molina compatibility sets).
	spec, err := mla.NewSpec(n, mla.Uniform(3, 2))
	if err != nil {
		panic(err)
	}

	// A ping-pong interleaving that is NOT serializable.
	e := mla.Execution{
		{Txn: "t1", Seq: 1, Entity: "x"},
		{Txn: "t2", Seq: 1, Entity: "x"},
		{Txn: "t2", Seq: 2, Entity: "y"},
		{Txn: "t1", Seq: 2, Entity: "y"},
	}
	atomic, _ := spec.Atomic(e)
	correctable, _ := spec.Correctable(e)
	ser, _ := mla.Serializability([]mla.TxnID{"t1", "t2"}).Correctable(e)
	fmt.Println("atomic:", atomic)
	fmt.Println("correctable:", correctable)
	fmt.Println("serializable:", ser)
	// Output:
	// atomic: true
	// correctable: true
	// serializable: false
}

// ExampleSpec_Witness shows Lemma 1 in action: a correctable execution is
// reordered into an equivalent multilevel atomic one.
func ExampleSpec_Witness() {
	n := mla.NewNest(2)
	n.Add("t1")
	n.Add("t2")
	spec, _ := mla.NewSpec(n, mla.Uniform(2, 2))

	// t2's step is recorded between t1's two steps, but nothing orders
	// them: the execution is correctable though not serial.
	e := mla.Execution{
		{Txn: "t1", Seq: 1, Entity: "x"},
		{Txn: "t2", Seq: 1, Entity: "z"},
		{Txn: "t1", Seq: 2, Entity: "y"},
	}
	w, ok, _ := spec.Witness(e)
	fmt.Println("witness found:", ok)
	for _, s := range w {
		fmt.Printf("%s[%d] on %s\n", s.Txn, s.Seq, s.Entity)
	}
	// Output:
	// witness found: true
	// t2[1] on z
	// t1[1] on x
	// t1[2] on y
}

// ExampleBreakpointFunc shows a phase-structured breakpoint specification:
// a transfer exposes its only class-wide breakpoint between the withdrawal
// and deposit phases.
func ExampleBreakpointFunc() {
	bp := mla.BreakpointFunc(3, func(t mla.TxnID, prefix []mla.Step) int {
		if prefix[len(prefix)-1].Label == "withdraw" && len(prefix) == 2 {
			return 2 // end of the withdrawal phase
		}
		return 3
	})
	prefix := []mla.Step{
		{Txn: "t", Seq: 1, Label: "withdraw"},
		{Txn: "t", Seq: 2, Label: "withdraw"},
	}
	fmt.Println("coarseness after phase:", bp.CutAfter("t", prefix))
	fmt.Println("coarseness mid-phase:", bp.CutAfter("t", prefix[:1]))
	// Output:
	// coarseness after phase: 2
	// coarseness mid-phase: 3
}

// ExampleRun executes programs for real — one goroutine per transaction
// under a pluggable concurrency control — and validates the surviving
// execution. The increments commute, so the final state is the same no
// matter how the engine schedules the conflict.
func ExampleRun() {
	programs := []mla.Program{
		&mla.Scripted{Txn: "t1", Ops: []mla.Op{mla.Add("x", 5), mla.Add("y", 5)}},
		&mla.Scripted{Txn: "t2", Ops: []mla.Op{mla.Add("y", 2), mla.Add("x", 2)}},
	}
	control, err := mla.NewControl(mla.ControlShardedTwoPhase, nil, nil)
	if err != nil {
		panic(err)
	}
	res, err := mla.Run(context.Background(), mla.RunConfig{Seed: 1}, programs, control,
		nil, map[mla.EntityID]mla.Value{"x": 0, "y": 0})
	if err != nil {
		panic(err)
	}
	ser, _ := mla.Serializability([]mla.TxnID{"t1", "t2"}).Correctable(res.Exec)
	fmt.Println("committed:", res.Committed)
	fmt.Println("x:", res.Final["x"], "y:", res.Final["y"])
	fmt.Println("serializable:", ser)
	// Output:
	// committed: 2
	// x: 7 y: 7
	// serializable: true
}

// ExampleRunWithCrashes survives an injected crash: the system dies at the
// fifth durable append, volatile state is lost, the write-ahead log
// recovers the committed prefix, and a second round finishes the rest.
func ExampleRunWithCrashes() {
	programs := []mla.Program{
		&mla.Scripted{Txn: "t1", Ops: []mla.Op{mla.Add("x", 1), mla.Add("y", 1)}},
		&mla.Scripted{Txn: "t2", Ops: []mla.Op{mla.Add("x", 2), mla.Add("y", 2)}},
		&mla.Scripted{Txn: "t3", Ops: []mla.Op{mla.Add("x", 4), mla.Add("y", 4)}},
	}
	plan := mla.CrashPlan{
		Init:   map[mla.EntityID]mla.Value{"x": 0, "y": 0},
		Faults: mla.FaultPlan{CrashAppends: []int64{5}},
		NewControl: func() mla.Control {
			c, _ := mla.NewControl(mla.ControlTwoPhase, nil, nil)
			return c
		},
	}
	res, err := mla.RunWithCrashes(context.Background(), plan, programs)
	if err != nil {
		panic(err)
	}
	fmt.Println("crashes:", res.Crashes)
	fmt.Println("committed:", res.Committed)
	fmt.Println("x:", res.Final["x"], "y:", res.Final["y"])
	// Output:
	// crashes: 1
	// committed: 3
	// x: 7 y: 7
}

// ExampleCompatibilitySets builds Garcia-Molina's scheme, the k=3 special
// case of multilevel atomicity.
func ExampleCompatibilitySets() {
	spec := mla.CompatibilitySets([][]mla.TxnID{
		{"deposit-1", "deposit-2"}, // compatible with each other
		{"report"},                 // must be atomic wrt everything
	})
	e := mla.Execution{
		{Txn: "deposit-1", Seq: 1, Entity: "acct"},
		{Txn: "report", Seq: 1, Entity: "acct"},
		{Txn: "deposit-1", Seq: 2, Entity: "acct"},
	}
	ok, _ := spec.Correctable(e)
	fmt.Println("report interrupting a deposit:", ok)
	// Output:
	// report interrupting a deposit: false
}
