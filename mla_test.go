package mla_test

import (
	"context"
	"strings"
	"testing"

	"mla"
	"mla/internal/model"
)

// TestPublicAPI exercises the re-exported façade end to end: build a nest
// and breakpoints, record an execution, and query atomicity/correctability.
func TestPublicAPI(t *testing.T) {
	n := mla.NewNest(3)
	n.Add("t1", "g")
	n.Add("t2", "g")
	spec, err := mla.NewSpec(n, mla.Uniform(3, 2))
	if err != nil {
		t.Fatal(err)
	}
	if spec.K() != 3 {
		t.Errorf("K = %d", spec.K())
	}
	e := mla.Execution{
		{Txn: "t1", Seq: 1, Entity: "x"},
		{Txn: "t2", Seq: 1, Entity: "x"},
		{Txn: "t2", Seq: 2, Entity: "y"},
		{Txn: "t1", Seq: 2, Entity: "y"},
	}
	atomic, err := spec.Atomic(e)
	if err != nil {
		t.Fatal(err)
	}
	if !atomic {
		t.Error("same-class ping-pong with per-step breakpoints is atomic")
	}
	ser := mla.Serializability([]mla.TxnID{"t1", "t2"})
	ok, err := ser.Correctable(e)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("the same execution is not serializable")
	}
}

func TestBreakpointFunc(t *testing.T) {
	calls := 0
	bp := mla.BreakpointFunc(3, func(_ mla.TxnID, prefix []mla.Step) int {
		calls++
		if len(prefix) == 1 {
			return 2
		}
		return 3
	})
	if bp.K() != 3 {
		t.Errorf("K = %d", bp.K())
	}
	if c := bp.CutAfter("t", []mla.Step{{Txn: "t", Seq: 1}}); c != 2 {
		t.Errorf("cut = %d", c)
	}
	if calls != 1 {
		t.Errorf("calls = %d", calls)
	}
}

func TestCompatibilitySetsFacade(t *testing.T) {
	spec := mla.CompatibilitySets([][]mla.TxnID{{"a", "b"}, {"c"}})
	e := mla.Execution{
		{Txn: "a", Seq: 1, Entity: "x"},
		{Txn: "c", Seq: 1, Entity: "x"},
		{Txn: "a", Seq: 2, Entity: "x"},
	}
	ok, err := spec.Correctable(e)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("cross-class interruption must not be correctable")
	}
	w, ok, err := spec.Witness(mla.Execution{
		{Txn: "a", Seq: 1, Entity: "x"},
		{Txn: "b", Seq: 1, Entity: "x", Before: 0, After: 0},
	})
	if err != nil || !ok {
		t.Fatalf("witness: %v %v", ok, err)
	}
	if len(w) != 2 {
		t.Errorf("witness = %v", w)
	}
	_ = model.Execution(w) // the alias is the real type
}

func TestFacadeProgramHelpers(t *testing.T) {
	p1 := &mla.Scripted{Txn: "a", Ops: []mla.Op{mla.Add("x", 5), mla.Write("y", 9)}}
	p2 := &mla.Scripted{Txn: "b", Ops: []mla.Op{mla.Read("x")}}
	vals := map[mla.EntityID]mla.Value{"x": 1}
	e, err := mla.RunSerial([]mla.Program{p1, p2}, vals)
	if err != nil {
		t.Fatal(err)
	}
	if vals["x"] != 6 || vals["y"] != 9 {
		t.Errorf("vals = %v", vals)
	}
	if len(e) != 3 {
		t.Errorf("steps = %d", len(e))
	}
	vals2 := map[mla.EntityID]mla.Value{"x": 1}
	e2, err := mla.Interleave([]mla.Program{p1, p2}, vals2, []int{0, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	out := mla.Timeline(e2, mla.Uniform(2, 2), 0)
	if out == "" || !strings.Contains(out, "a") {
		t.Errorf("timeline:\n%s", out)
	}
}

func TestFacadeCheckResult(t *testing.T) {
	spec := mla.Serializability([]mla.TxnID{"t"})
	res, err := spec.Check(mla.Execution{{Txn: "t", Seq: 1, Entity: "x"}})
	if err != nil {
		t.Fatal(err)
	}
	var cr *mla.CheckResult = res // the alias is usable externally
	if !cr.Atomic || !cr.Correctable {
		t.Error("trivial execution must be atomic")
	}
}

// TestWithTelemetry: the façade attaches a telemetry sink to a run config
// (teeing with any observer already present) and the run records spans and
// counters; a nil sink leaves the config untouched.
func TestWithTelemetry(t *testing.T) {
	progs := []mla.Program{
		&mla.Scripted{Txn: "a", Ops: []mla.Op{mla.Add("x", 1), mla.Add("y", 1)}},
		&mla.Scripted{Txn: "b", Ops: []mla.Op{mla.Add("y", 1), mla.Add("x", 1)}},
	}
	ctl, err := mla.NewControl(mla.ControlTwoPhase, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	tel := mla.NewTelemetry()
	var ev mla.EventCounts
	cfg := mla.WithTelemetry(mla.RunConfig{Seed: 3, Observer: &ev}, tel, "facade")
	res, err := mla.Run(context.Background(), cfg, progs, ctl, nil,
		map[mla.EntityID]mla.Value{"x": 0, "y": 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed != len(progs) {
		t.Fatalf("committed %d/%d", res.Committed, len(progs))
	}
	if ev.Runs != 1 {
		t.Errorf("teed observer missed the run (runs=%d)", ev.Runs)
	}
	if got := tel.Metrics.Counter("engine.committed").Value(); got != int64(res.Committed) {
		t.Errorf("engine.committed = %d, want %d", got, res.Committed)
	}
	var sawRun bool
	for _, s := range tel.Trace.Spans() {
		if s.Cat == "run" {
			sawRun = true
		}
	}
	if !sawRun {
		t.Error("no run span recorded")
	}
	// nil sink: config unchanged, observer untouched.
	plain := mla.RunConfig{Seed: 3, Observer: &ev}
	if got := mla.WithTelemetry(plain, nil, ""); got.Observer != plain.Observer {
		t.Error("WithTelemetry(nil) altered the config")
	}
}
